package core

import (
	"testing"
	"time"

	"aimes/internal/skeleton"
)

func stagedApp() skeleton.AppSpec {
	return skeleton.AppSpec{
		Name: "staged",
		Stages: []skeleton.StageSpec{
			{Name: "a", Tasks: 8, DurationS: skeleton.Constant(120),
				InputBytes: skeleton.Constant(1 << 20), OutputBytes: skeleton.Constant(1 << 19)},
			{Name: "b", Tasks: 8, DurationS: skeleton.Constant(60),
				OutputBytes: skeleton.Constant(1 << 10), Inputs: skeleton.MapOneToOne},
		},
	}
}

func TestExecuteStagedRunsAllStages(t *testing.T) {
	e := newEnv(t, 80)
	w, err := skeleton.Generate(stagedApp(), 80)
	if err != nil {
		t.Fatal(err)
	}
	total, stages, err := e.mgr.ExecuteStaged(w, StrategyConfig{
		Binding: LateBinding, Scheduler: SchedBackfill, Pilots: 2, Selection: SelectRandom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("stage reports = %d, want 2", len(stages))
	}
	if total.UnitsDone != 16 {
		t.Fatalf("done = %d, want 16", total.UnitsDone)
	}
	// Stages serialize: total TTC is the sum.
	if total.TTC != stages[0].TTC+stages[1].TTC {
		t.Fatalf("TTC %v != %v + %v", total.TTC, stages[0].TTC, stages[1].TTC)
	}
	if total.Efficiency <= 0 || total.Throughput <= 0 {
		t.Fatalf("aggregate metrics missing: %+v", total)
	}
}

func TestExecuteStagedFeedsBundleHistory(t *testing.T) {
	e := newEnv(t, 81)
	w, err := skeleton.Generate(stagedApp(), 81)
	if err != nil {
		t.Fatal(err)
	}
	before := 0
	for _, r := range e.bndl.Resources() {
		before += r.HistoryLen()
	}
	if _, _, err := e.mgr.ExecuteStaged(w, StrategyConfig{
		Binding: LateBinding, Scheduler: SchedBackfill, Pilots: 2, Selection: SelectRandom,
	}); err != nil {
		t.Fatal(err)
	}
	after := 0
	for _, r := range e.bndl.Resources() {
		after += r.HistoryLen()
	}
	if after <= before {
		t.Fatal("observed pilot waits were not fed back into the bundle")
	}
}

func TestExecuteStagedEmptyWorkload(t *testing.T) {
	e := newEnv(t, 82)
	w := &skeleton.Workload{Name: "empty"}
	if _, _, err := e.mgr.ExecuteStaged(w, StrategyConfig{Pilots: 1, Selection: SelectRandom}); err == nil {
		t.Fatal("empty workload staged")
	}
}

func TestStageWorkloadDecomposition(t *testing.T) {
	w, err := skeleton.Generate(stagedApp(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sub := stageWorkload(w, "b")
	if sub.TotalTasks() != 8 {
		t.Fatalf("stage b has %d tasks", sub.TotalTasks())
	}
	for _, task := range sub.Tasks {
		if len(task.Deps) != 0 {
			t.Fatal("cross-stage deps must be cleared")
		}
		for _, f := range task.Inputs {
			if !f.External() {
				t.Fatal("cross-stage inputs must become external")
			}
		}
		// Input sizes preserved from the producer outputs (512 KB).
		if task.InputBytes() != 1<<19 {
			t.Fatalf("input bytes = %d, want %d", task.InputBytes(), 1<<19)
		}
	}
}

func TestResourceOf(t *testing.T) {
	cases := map[string]string{
		"pilot.stampede.3": "stampede",
		"pilot.comet.12":   "comet",
		"pilot.x":          "x",
		"odd":              "odd",
	}
	for in, want := range cases {
		if got := resourceOf(in); got != want {
			t.Fatalf("resourceOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExecuteStagedSkipsEmptyStages(t *testing.T) {
	// A workload listing a stage with no tasks (possible via manual
	// construction) is skipped, not an error.
	e := newEnv(t, 83)
	w, err := skeleton.Generate(stagedApp(), 83)
	if err != nil {
		t.Fatal(err)
	}
	w.Stages = append(w.Stages, "ghost")
	total, stages, err := e.mgr.ExecuteStaged(w, StrategyConfig{
		Binding: LateBinding, Scheduler: SchedBackfill, Pilots: 2, Selection: SelectRandom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 || total.UnitsDone != 16 {
		t.Fatalf("ghost stage mishandled: %d reports, %d done", len(stages), total.UnitsDone)
	}
}

func TestStagedVersusIntegratedLocality(t *testing.T) {
	// Integrated enactment keeps same-pilot intermediates on the resource;
	// staged decomposition re-stages them. With a large intermediate the
	// integrated mode must spend no more staging time than the staged one.
	app := skeleton.AppSpec{
		Name: "locality",
		Stages: []skeleton.StageSpec{
			{Name: "a", Tasks: 4, DurationS: skeleton.Constant(60),
				InputBytes: skeleton.Constant(1 << 10), OutputBytes: skeleton.Constant(64 << 20)},
			{Name: "b", Tasks: 4, DurationS: skeleton.Constant(60),
				OutputBytes: skeleton.Constant(1 << 10), Inputs: skeleton.MapOneToOne},
		},
	}
	wIntegrated, err := skeleton.Generate(app, 84)
	if err != nil {
		t.Fatal(err)
	}
	eInt := newEnv(t, 84)
	sInt, err := Derive(wIntegrated, eInt.bndl, StrategyConfig{
		Binding: LateBinding, Scheduler: SchedBackfill, Pilots: 1, Selection: SelectFixed,
		FixedResources: []string{"stampede"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Give the integrated strategy a generous walltime so both stages run
	// inside one pilot.
	sInt.PilotWalltime = 6 * time.Hour
	rInt, err := eInt.mgr.ExecuteAndWait(wIntegrated, sInt)
	if err != nil {
		t.Fatal(err)
	}

	eStaged := newEnv(t, 84)
	wStaged, _ := skeleton.Generate(app, 84)
	rStaged, _, err := eStaged.mgr.ExecuteStaged(wStaged, StrategyConfig{
		Binding: LateBinding, Scheduler: SchedBackfill, Pilots: 1, Selection: SelectFixed,
		FixedResources: []string{"stampede"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rInt.Ts >= rStaged.Ts {
		t.Fatalf("integrated Ts %v not below staged Ts %v (locality lost)", rInt.Ts, rStaged.Ts)
	}
}
