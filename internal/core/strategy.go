// Package core implements the paper's primary contribution: the Execution
// Strategy abstraction and the Execution Manager that derives and enacts
// strategies. A strategy makes explicit the decisions that usually stay
// implicit when coupling an application to resources: early or late binding
// of tasks to pilots, the unit scheduler, the number of pilots, their size,
// and their walltime (Table I), plus the resource-selection policy.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"aimes/internal/bundle"
	"aimes/internal/pilot"
	"aimes/internal/skeleton"
)

// Binding selects when tasks are bound to pilots.
type Binding int

// Binding choices.
const (
	// EarlyBinding assigns tasks to pilots at submission time, before pilots
	// become active (experiments 1 and 2).
	EarlyBinding Binding = iota
	// LateBinding assigns tasks to pilots as they become active and have
	// capacity (experiments 3 and 4).
	LateBinding
)

func (b Binding) String() string {
	if b == LateBinding {
		return "late"
	}
	return "early"
}

// SchedulerKind selects the unit scheduler.
type SchedulerKind int

// Unit scheduler choices.
const (
	// SchedDirect sends every unit to the first pilot (early binding,
	// single pilot).
	SchedDirect SchedulerKind = iota
	// SchedRoundRobin distributes units evenly at submission time (early
	// binding, multiple pilots; kept for ablations).
	SchedRoundRobin
	// SchedBackfill assigns units to active pilots with free capacity (late
	// binding).
	SchedBackfill
)

func (s SchedulerKind) String() string {
	switch s {
	case SchedRoundRobin:
		return "round-robin"
	case SchedBackfill:
		return "backfill"
	}
	return "direct"
}

// build returns the pilot-layer scheduler.
func (s SchedulerKind) build() pilot.Scheduler {
	switch s {
	case SchedRoundRobin:
		return pilot.RoundRobin{}
	case SchedBackfill:
		return pilot.Backfill{}
	}
	return pilot.Direct{}
}

// Selection chooses how resources are picked from the bundle.
type Selection int

// Resource-selection policies.
const (
	// SelectRandom draws resources uniformly from the bundle (the paper's
	// experiments draw from the available pool).
	SelectRandom Selection = iota
	// SelectByPredictedWait prefers resources with the lowest predicted
	// median queue wait (requires primed bundle history; ablation A3).
	SelectByPredictedWait
	// SelectFixed uses the listed resources verbatim.
	SelectFixed
)

func (s Selection) String() string {
	switch s {
	case SelectByPredictedWait:
		return "predicted-wait"
	case SelectFixed:
		return "fixed"
	}
	return "random"
}

// StrategyConfig is the input to strategy derivation: the decision knobs the
// user (or experiment) fixes, with everything else derived from application
// and resource information.
type StrategyConfig struct {
	// Binding selects early or late binding.
	Binding Binding
	// Scheduler overrides the default unit scheduler for the binding
	// (Direct for early, Backfill for late). Leave as SchedDirect with
	// early binding and SchedBackfill with late binding to follow Table I.
	Scheduler SchedulerKind
	// Pilots is the number of pilots (1 for the paper's early binding, 3
	// for late binding). Zero with AutoPilots set lets the manager choose.
	Pilots int
	// AutoPilots lets the Execution Manager pick the pilot count by its
	// semi-empirical TTC heuristic over bundle wait history (see
	// ChoosePilotCount). Requires primed predictive history.
	AutoPilots bool
	// MaxPilots bounds AutoPilots (default: bundle size).
	MaxPilots int
	// Selection picks the resource-selection policy.
	Selection Selection
	// FixedResources lists resources for SelectFixed.
	FixedResources []string
	// WalltimeSlack inflates the derived walltime as a safety margin
	// (default 1.15).
	WalltimeSlack float64
	// DispatchOverhead is the per-unit middleware overhead used in the Trp
	// estimate; it should match the pilot system's configuration.
	DispatchOverhead time.Duration
}

// Strategy is a fully derived execution strategy: the concrete realization
// of every decision, ready for enactment.
type Strategy struct {
	Binding       Binding
	Scheduler     SchedulerKind
	Pilots        int
	Resources     []string // len == Pilots
	PilotCores    int
	PilotWalltime time.Duration

	// Estimates recorded for introspection (Tx, Ts, Trp of Table I).
	EstTx  time.Duration
	EstTs  time.Duration
	EstTrp time.Duration
}

func (s Strategy) String() string {
	return fmt.Sprintf("%s binding, %s scheduler, %d pilot(s) × %d cores, walltime %s, on %v",
		s.Binding, s.Scheduler, s.Pilots, s.PilotCores, s.PilotWalltime, s.Resources)
}

// Validate reports a descriptive error for malformed strategies.
func (s Strategy) Validate() error {
	if s.Pilots <= 0 {
		return fmt.Errorf("core: strategy with %d pilots", s.Pilots)
	}
	if len(s.Resources) != s.Pilots {
		return fmt.Errorf("core: strategy names %d resources for %d pilots", len(s.Resources), s.Pilots)
	}
	if s.PilotCores <= 0 {
		return fmt.Errorf("core: strategy with %d cores per pilot", s.PilotCores)
	}
	if s.PilotWalltime <= 0 {
		return fmt.Errorf("core: strategy with walltime %v", s.PilotWalltime)
	}
	return nil
}

// Derive makes the paper's five strategy decisions for a workload against a
// bundle: (1) binding, (2) unit scheduler, (3) pilot count, (4) pilot size,
// (5) pilot walltime — plus the resource choice. It implements steps 1–4 of
// the Execution Manager's derivation (§III-D); enactment is Manager.Execute.
//
// Pilot size follows Table I: the workload's peak core demand divided evenly
// across pilots. Walltime follows Table I with Tx estimated as the longest
// task duration (full-concurrency estimate), Ts from bundle network
// queries, Trp from the per-unit dispatch overhead; late binding multiplies
// by the pilot count because in the worst case one pilot executes the whole
// workload in waves.
func Derive(w *skeleton.Workload, b *bundle.Bundle, cfg StrategyConfig, rng *rand.Rand) (Strategy, error) {
	if w.TotalTasks() == 0 {
		return Strategy{}, fmt.Errorf("core: empty workload")
	}
	if cfg.Pilots <= 0 {
		if cfg.AutoPilots {
			cfg.Pilots = ChoosePilotCount(w, b, cfg.MaxPilots)
		} else {
			cfg.Pilots = 1
		}
	}
	if cfg.WalltimeSlack <= 0 {
		cfg.WalltimeSlack = 1.15
	}
	if cfg.DispatchOverhead <= 0 {
		cfg.DispatchOverhead = pilot.DefaultConfig().AgentDispatchOverhead
	}

	// Decision 4: pilot size = peak demand / pilots, rounded up.
	totalCores := w.TotalCores()
	pilotCores := (totalCores + cfg.Pilots - 1) / cfg.Pilots

	// Resource choice: capacity-feasible resources only.
	resources, err := selectResources(b, cfg, pilotCores, rng)
	if err != nil {
		return Strategy{}, err
	}

	// Decision 5: walltime from the Tx/Ts/Trp estimates (Table I). The
	// full-concurrency Tx estimate is the critical path across stages: the
	// sum over stages of the longest task, since stages with data
	// dependencies serialize. For single-stage bags of tasks this reduces to
	// the longest task duration, matching Table I.
	estTx := estimateTx(w)
	estTs := estimateStaging(w, b, resources)
	estTrp := time.Duration(w.TotalTasks()) * cfg.DispatchOverhead
	per := estTx + estTs + estTrp
	if cfg.Binding == LateBinding {
		per *= time.Duration(cfg.Pilots)
	}
	walltime := time.Duration(float64(per)*cfg.WalltimeSlack) + 5*time.Minute

	s := Strategy{
		Binding:       cfg.Binding,
		Scheduler:     cfg.Scheduler,
		Pilots:        cfg.Pilots,
		Resources:     resources,
		PilotCores:    pilotCores,
		PilotWalltime: walltime,
		EstTx:         estTx,
		EstTs:         estTs,
		EstTrp:        estTrp,
	}
	if err := s.Validate(); err != nil {
		return Strategy{}, err
	}
	return s, nil
}

// selectResources picks cfg.Pilots distinct resources with enough capacity.
func selectResources(b *bundle.Bundle, cfg StrategyConfig, pilotCores int, rng *rand.Rand) ([]string, error) {
	if cfg.Selection == SelectFixed {
		if len(cfg.FixedResources) < cfg.Pilots {
			return nil, fmt.Errorf("core: fixed selection lists %d resources for %d pilots",
				len(cfg.FixedResources), cfg.Pilots)
		}
		return cfg.FixedResources[:cfg.Pilots], nil
	}

	type candidate struct {
		name string
		wait time.Duration
	}
	var pool []candidate
	for _, r := range b.Resources() {
		info := r.Compute()
		if info.TotalCores < pilotCores {
			continue
		}
		c := candidate{name: info.Name, wait: info.SetupTime}
		pool = append(pool, c)
	}
	if len(pool) < cfg.Pilots {
		return nil, fmt.Errorf("core: only %d resource(s) can host a %d-core pilot, need %d",
			len(pool), pilotCores, cfg.Pilots)
	}

	switch cfg.Selection {
	case SelectByPredictedWait:
		sort.SliceStable(pool, func(i, j int) bool { return pool[i].wait < pool[j].wait })
	default: // SelectRandom
		if rng == nil {
			return nil, fmt.Errorf("core: random selection requires an RNG")
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}
	out := make([]string, cfg.Pilots)
	for i := range out {
		out[i] = pool[i].name
	}
	return out, nil
}

// estimateTx returns the full-concurrency execution-time estimate: the sum
// over stages of each stage's longest task duration.
func estimateTx(w *skeleton.Workload) time.Duration {
	longest := make(map[string]time.Duration)
	for _, t := range w.Tasks {
		if t.Duration > longest[t.Stage] {
			longest[t.Stage] = t.Duration
		}
	}
	var sum time.Duration
	for _, d := range longest {
		sum += d
	}
	return sum
}

// estimateStaging predicts Ts via bundle network queries: all external input
// and output payload over the slowest chosen link.
func estimateStaging(w *skeleton.Workload, b *bundle.Bundle, resources []string) time.Duration {
	bytes := w.ExternalInputBytes() + w.OutputBytes()
	var worst time.Duration
	for _, name := range resources {
		r := b.Resource(name)
		if r == nil {
			continue
		}
		if est := r.EstimateTransfer(bytes); est > worst {
			worst = est
		}
	}
	if worst == 0 {
		// No bundle information: fall back to a conservative 5 MB/s.
		worst = time.Duration(float64(bytes) / 5e6 * float64(time.Second))
	}
	return worst
}
