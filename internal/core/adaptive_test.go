package core

import (
	"math/rand"
	"testing"
	"time"

	"aimes/internal/batch"
	"aimes/internal/bundle"
	"aimes/internal/netsim"
	"aimes/internal/pilot"
	"aimes/internal/saga"
	"aimes/internal/sim"
	"aimes/internal/site"
)

// slowFastEnv builds a testbed where the initially chosen resource is
// pathologically slow and another is fast, so adaptation pays off
// deterministically.
func slowFastEnv(t *testing.T, seed int64) *env {
	t.Helper()
	eng := sim.NewSim()
	mk := func(name string, median time.Duration) site.Config {
		return site.Config{
			Name: name, Nodes: 512, CoresPerNode: 16, Architecture: "beowulf",
			WaitModel:     batch.WaitModel{MedianWait: median, Sigma: 0},
			SubmitLatency: time.Second,
			BandwidthMBps: 10, NetLatency: 100 * time.Millisecond,
		}
	}
	configs := []site.Config{
		mk("slow", 6*time.Hour),
		mk("fast", 2*time.Minute),
	}
	tb, err := site.NewTestbed(eng, configs, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	sess := saga.NewSession()
	for _, s := range tb.Sites() {
		sess.Register(saga.NewBatchAdaptor(eng, s))
	}
	b := bundle.New(tb.Sites())
	links := func(resource string) *netsim.Link { return tb.Site(resource).Link() }
	mgr := NewManager(eng, b, sess, links, pilot.DefaultConfig(), nil,
		rand.New(rand.NewSource(seed)))
	return &env{eng: eng, tb: tb, bndl: b, mgr: mgr}
}

func TestAdaptiveAddsPilotWhenStuck(t *testing.T) {
	e := slowFastEnv(t, 1)
	// Prime predictions so adaptation picks the fast resource knowingly.
	for i := 0; i < 50; i++ {
		e.bndl.Resource("slow").ObserveWait(6 * 3600)
		e.bndl.Resource("fast").ObserveWait(120)
	}
	w := botWorkload(t, 16, 1)
	s := Strategy{
		Binding:       LateBinding,
		Scheduler:     SchedBackfill,
		Pilots:        1,
		Resources:     []string{"slow"},
		PilotCores:    16,
		PilotWalltime: 8 * time.Hour,
	}
	exec, err := e.mgr.ExecuteAdaptive(w, s, AdaptiveConfig{
		Patience:       10 * time.Minute,
		MaxExtraPilots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if !exec.Done() {
		t.Fatal("execution incomplete")
	}
	report := exec.Report()
	if report.ExtraPilots != 1 {
		t.Fatalf("extra pilots = %d, want 1", report.ExtraPilots)
	}
	if report.UnitsDone != 16 {
		t.Fatalf("done = %d", report.UnitsDone)
	}
	// TTC must be bounded by patience + fast wait + execution, far below the
	// 6-hour slow wait.
	if report.TTC > 2*time.Hour {
		t.Fatalf("TTC %v: adaptation did not rescue the run", report.TTC)
	}
	// The trace records the adaptation.
	if _, ok := e.mgr.Recorder().First("em", "ADAPTED"); !ok {
		t.Fatal("trace missing ADAPTED record")
	}
}

func TestAdaptiveDoesNotFireWhenHealthy(t *testing.T) {
	e := slowFastEnv(t, 2)
	w := botWorkload(t, 16, 2)
	s := Strategy{
		Binding:       LateBinding,
		Scheduler:     SchedBackfill,
		Pilots:        1,
		Resources:     []string{"fast"},
		PilotCores:    16,
		PilotWalltime: 2 * time.Hour,
	}
	exec, err := e.mgr.ExecuteAdaptive(w, s, AdaptiveConfig{
		Patience:       30 * time.Minute, // fast activates at ~2m
		MaxExtraPilots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if exec.Report().ExtraPilots != 0 {
		t.Fatalf("extra pilots = %d, want 0", exec.Report().ExtraPilots)
	}
}

func TestAdaptiveBudgetExhausts(t *testing.T) {
	e := slowFastEnv(t, 3)
	w := botWorkload(t, 8, 3)
	s := Strategy{
		Binding:       LateBinding,
		Scheduler:     SchedBackfill,
		Pilots:        1,
		Resources:     []string{"slow"},
		PilotCores:    8,
		PilotWalltime: 8 * time.Hour,
	}
	// Patience so short that both adaptation rounds fire before any
	// activation; only one other resource exists, so exactly one extra
	// pilot can be added.
	exec, err := e.mgr.ExecuteAdaptive(w, s, AdaptiveConfig{
		Patience:       30 * time.Second,
		MaxExtraPilots: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if exec.Report().ExtraPilots != 1 {
		t.Fatalf("extra pilots = %d, want 1 (pool exhausted)", exec.Report().ExtraPilots)
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	e := slowFastEnv(t, 4)
	w := botWorkload(t, 8, 4)
	s := Strategy{
		Binding: LateBinding, Scheduler: SchedBackfill, Pilots: 1,
		Resources: []string{"fast"}, PilotCores: 8, PilotWalltime: time.Hour,
	}
	if _, err := e.mgr.ExecuteAdaptive(w, s, AdaptiveConfig{Patience: 0}); err == nil {
		t.Fatal("zero patience accepted")
	}
	if _, err := e.mgr.ExecuteAdaptive(w, s, AdaptiveConfig{
		Patience: time.Minute, MaxExtraPilots: -1,
	}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestChoosePilotCountPrefersMultiplePilots(t *testing.T) {
	e := newEnv(t, 5)
	// Prime realistic heavy-tailed history on the default testbed.
	rng := rand.New(rand.NewSource(5))
	for _, cfg := range site.DefaultTestbed() {
		r := e.bndl.Resource(cfg.Name)
		for i := 0; i < 200; i++ {
			r.ObserveWait(cfg.WaitModel.SampleWait(rng, 1, cfg.Nodes).Seconds())
		}
	}
	w := botWorkload(t, 256, 5)
	k := ChoosePilotCount(w, e.bndl, 5)
	if k < 2 || k > 5 {
		t.Fatalf("chose %d pilots; heavy-tailed waits should favor 2..5", k)
	}
}

func TestChoosePilotCountFallsBackWithoutHistory(t *testing.T) {
	e := newEnv(t, 6)
	w := botWorkload(t, 64, 6)
	if k := ChoosePilotCount(w, e.bndl, 5); k != 3 {
		t.Fatalf("cold-start choice = %d, want the paper default 3", k)
	}
	if k := ChoosePilotCount(w, e.bndl, 2); k != 2 {
		t.Fatalf("cold-start bounded choice = %d, want 2", k)
	}
}

func TestDeriveAutoPilots(t *testing.T) {
	e := newEnv(t, 7)
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range site.DefaultTestbed() {
		r := e.bndl.Resource(cfg.Name)
		for i := 0; i < 100; i++ {
			r.ObserveWait(cfg.WaitModel.SampleWait(rng, 1, cfg.Nodes).Seconds())
		}
	}
	w := botWorkload(t, 128, 7)
	s, err := Derive(w, e.bndl, StrategyConfig{
		Binding:    LateBinding,
		Scheduler:  SchedBackfill,
		AutoPilots: true,
		Selection:  SelectByPredictedWait,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pilots < 2 {
		t.Fatalf("auto-derived %d pilots, want >= 2", s.Pilots)
	}
	if len(s.Resources) != s.Pilots {
		t.Fatal("resource list inconsistent")
	}
}
