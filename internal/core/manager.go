package core

import (
	"fmt"
	"math/rand"

	"aimes/internal/bundle"
	"aimes/internal/netsim"
	"aimes/internal/pilot"
	"aimes/internal/saga"
	"aimes/internal/sim"
	"aimes/internal/skeleton"
	"aimes/internal/trace"
)

// Manager is the Execution Manager: it gathers application information via
// the skeleton API and resource information via the bundle API, derives an
// execution strategy, and enacts it through the pilot layer (§III-D,
// Figure 1 steps 1–6).
type Manager struct {
	eng     sim.Engine
	bundle  *bundle.Bundle
	session *saga.Session
	links   pilot.LinkResolver
	cfg     pilot.Config
	rec     *trace.Recorder
	rng     *rand.Rand
}

// NewManager wires an execution manager. The recorder may be nil, in which
// case a fresh one is created per execution.
func NewManager(eng sim.Engine, b *bundle.Bundle, session *saga.Session,
	links pilot.LinkResolver, cfg pilot.Config, rec *trace.Recorder, rng *rand.Rand) *Manager {
	if rec == nil {
		rec = trace.NewRecorder()
	}
	return &Manager{eng: eng, bundle: b, session: session, links: links,
		cfg: cfg, rec: rec, rng: rng}
}

// Recorder exposes the shared trace recorder.
func (m *Manager) Recorder() *trace.Recorder { return m.rec }

// Execution is an in-flight enactment handle.
type Execution struct {
	m           *Manager
	workload    *skeleton.Workload
	strategy    Strategy
	pm          *pilot.PilotManager
	um          *pilot.UnitManager
	started     sim.Time
	ended       sim.Time
	done        bool
	extraPilots int
	onDone      []func(*Report)
	report      *Report

	// Lost-pilot replanning (AdaptiveConfig.ReplaceLostPilots).
	watchForLoss  bool
	replaceBudget int
}

// Strategy returns the enacted strategy.
func (e *Execution) Strategy() Strategy { return e.strategy }

// Done reports whether the execution has completed.
func (e *Execution) Done() bool { return e.done }

// Report returns the final report, or nil while running.
func (e *Execution) Report() *Report { return e.report }

// OnComplete registers a callback fired once with the final report.
func (e *Execution) OnComplete(fn func(*Report)) {
	if e.done {
		fn(e.report)
		return
	}
	e.onDone = append(e.onDone, fn)
}

// Pilots returns the execution's pilots (initial and adaptation-added) in
// submission order.
func (e *Execution) Pilots() []*pilot.Pilot { return e.pm.Pilots() }

// Units returns the execution's managed units in submission order.
func (e *Execution) Units() []*pilot.Unit { return e.um.Units() }

// PreemptPilot preempts one non-final pilot on the named resource, as when
// the resource manager reclaims the allocation mid-run. Units the pilot held
// return to the unit manager for rescheduling on surviving pilots (or a
// replacement, with ReplaceLostPilots). It reports whether a pilot was
// preempted.
func (e *Execution) PreemptPilot(resource, reason string) bool {
	for _, p := range e.pm.Pilots() {
		if p.Resource() == resource && !p.State().Final() {
			e.pm.Preempt(p, reason)
			return true
		}
	}
	return false
}

// Execute enacts a strategy for a workload: pilots are described and
// submitted in randomized order (step 4–5), units are scheduled onto them
// (step 6), outputs are staged back, and all pilots are canceled when the
// workload completes. It returns immediately; completion is observed via
// OnComplete or by running the engine (see ExecuteAndWait).
func (m *Manager) Execute(w *skeleton.Workload, s Strategy) (*Execution, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if w.TotalTasks() == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	e := &Execution{m: m, workload: w, strategy: s, started: m.eng.Now()}
	m.rec.Record(m.eng.Now(), "em", "ENACTING", s.String())

	sys := pilot.NewSystem(m.eng, m.session, m.links, m.rec, m.cfg, m.rng)
	e.pm = pilot.NewPilotManager(sys)
	e.um = pilot.NewUnitManager(sys, s.Scheduler.build())

	// Randomize pilot submission order to decorrelate from resource order,
	// as the paper's experiments did.
	order := make([]string, len(s.Resources))
	copy(order, s.Resources)
	if m.rng != nil {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, resource := range order {
		p, err := e.pm.Submit(pilot.PilotDescription{
			Resource: resource,
			Cores:    s.PilotCores,
			Walltime: s.PilotWalltime,
		})
		if err != nil {
			e.pm.CancelAll()
			return nil, fmt.Errorf("core: submitting pilot to %s: %w", resource, err)
		}
		e.um.AddPilot(p)
	}

	descs := unitDescriptions(w)
	e.um.OnCompletion(func() { e.finish() })
	if err := e.um.Submit(descs); err != nil {
		e.pm.CancelAll()
		return nil, err
	}
	return e, nil
}

// finish cancels pilots, assembles the report and fires callbacks.
func (e *Execution) finish() {
	e.pm.CancelAll()
	e.ended = e.m.eng.Now()
	e.done = true
	e.m.rec.Record(e.ended, "em", "DONE", "")
	e.report = buildReport(e)
	for _, fn := range e.onDone {
		fn(e.report)
	}
	e.onDone = nil
}

// ExecuteAndWait is the synchronous convenience for discrete-event engines:
// it enacts the strategy and steps the simulation until the workload
// completes. Stepping (rather than draining) lets periodic components such
// as bundle monitors keep running without blocking completion.
func (m *Manager) ExecuteAndWait(eng *sim.Sim, w *skeleton.Workload, s Strategy) (*Report, error) {
	e, err := m.Execute(w, s)
	if err != nil {
		return nil, err
	}
	for !e.done && eng.Step() {
	}
	if !e.done {
		return nil, fmt.Errorf("core: simulation drained but workload incomplete (%d/%d units final)",
			countFinal(e.um), len(e.um.Units()))
	}
	return e.report, nil
}

func countFinal(um *pilot.UnitManager) int {
	n := 0
	for _, u := range um.Units() {
		if u.State().Final() {
			n++
		}
	}
	return n
}

// unitDescriptions converts skeleton tasks to compute-unit descriptions.
func unitDescriptions(w *skeleton.Workload) []pilot.UnitDescription {
	descs := make([]pilot.UnitDescription, 0, len(w.Tasks))
	for _, t := range w.Tasks {
		inputs := make([]pilot.InputFile, 0, len(t.Inputs))
		for _, f := range t.Inputs {
			inputs = append(inputs, pilot.InputFile{Bytes: f.Bytes, Producer: f.Producer})
		}
		descs = append(descs, pilot.UnitDescription{
			Name:        t.ID,
			Cores:       t.Cores,
			Duration:    t.Duration,
			Inputs:      inputs,
			OutputBytes: t.OutputBytes(),
			Deps:        t.Deps,
		})
	}
	return descs
}

// DeriveAndExecute is the full Execution Manager pipeline (Figure 1): gather
// information, derive the strategy, enact it, and wait for completion.
func (m *Manager) DeriveAndExecute(eng *sim.Sim, w *skeleton.Workload, cfg StrategyConfig) (*Report, error) {
	s, err := Derive(w, m.bundle, cfg, m.rng)
	if err != nil {
		return nil, err
	}
	return m.ExecuteAndWait(eng, w, s)
}

// Links builds a LinkResolver over a name→link map, a convenience for
// callers assembling managers by hand.
func Links(links map[string]*netsim.Link) pilot.LinkResolver {
	return func(resource string) *netsim.Link { return links[resource] }
}
