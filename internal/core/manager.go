package core

import (
	"fmt"
	"math/rand"
	"time"

	"aimes/internal/bundle"
	"aimes/internal/netsim"
	"aimes/internal/pilot"
	"aimes/internal/saga"
	"aimes/internal/sim"
	"aimes/internal/skeleton"
	"aimes/internal/trace"
)

// Manager is the Execution Manager: it gathers application information via
// the skeleton API and resource information via the bundle API, derives an
// execution strategy, and enacts it through the pilot layer (§III-D,
// Figure 1 steps 1–6). One manager serves many executions, sequentially or
// concurrently on a shared engine: each execution gets its own pilot system
// and may get its own trace recorder and pilot-ID namespace (ExecOptions),
// so tenants sharing the testbed stay observably separate.
type Manager struct {
	eng     sim.Engine
	bundle  *bundle.Bundle
	session *saga.Session
	links   pilot.LinkResolver
	cfg     pilot.Config
	rec     *trace.Recorder
	rng     *rand.Rand
}

// NewManager wires an execution manager. The recorder may be nil, in which
// case a fresh one is created per execution.
func NewManager(eng sim.Engine, b *bundle.Bundle, session *saga.Session,
	links pilot.LinkResolver, cfg pilot.Config, rec *trace.Recorder, rng *rand.Rand) *Manager {
	if rec == nil {
		rec = trace.NewRecorder()
	}
	return &Manager{eng: eng, bundle: b, session: session, links: links,
		cfg: cfg, rec: rec, rng: rng}
}

// Recorder exposes the shared trace recorder.
func (m *Manager) Recorder() *trace.Recorder { return m.rec }

// Engine exposes the engine the manager enacts on.
func (m *Manager) Engine() sim.Engine { return m.eng }

// Bundle exposes the resource bundle the manager derives against.
func (m *Manager) Bundle() *bundle.Bundle { return m.bundle }

// ExecOptions scopes one execution inside a shared environment. The zero
// value reproduces the classic single-tenant behavior: the manager's shared
// recorder and un-namespaced pilot IDs.
type ExecOptions struct {
	// Recorder receives this execution's trace. Nil uses the manager's
	// shared recorder. Multi-tenant callers pass a per-job recorder (and tee
	// it into an aggregate one via trace.Recorder.Observe if desired) so
	// reports and event streams never mix tenants.
	Recorder *trace.Recorder
	// Namespace scopes pilot IDs, e.g. "s0-j3" → "pilot.stampede.s0-j3-1".
	Namespace string
}

// Execution is one workload's enactment handle. It is created in a prepared
// state (PrepareWith) that holds no engine state at all, and crosses into
// the enacted state exactly once (Enact) when pilots are submitted and
// events scheduled; Enacted answers which side of that line it is on — the
// query cross-shard migration uses to decide whether a job may still be
// handed to a different shard's manager.
type Execution struct {
	m           *Manager
	rec         *trace.Recorder
	ns          string
	workload    *skeleton.Workload
	strategy    Strategy
	enacted     bool
	pm          *pilot.PilotManager
	um          *pilot.UnitManager
	started     sim.Time
	ended       sim.Time
	done        bool
	canceled    bool
	extraPilots int
	onDone      []func(*Report)
	report      *Report

	// Lost-pilot replanning (AdaptiveConfig.ReplaceLostPilots).
	watchForLoss  bool
	replaceBudget int
}

// Strategy returns the enacted strategy.
func (e *Execution) Strategy() Strategy { return e.strategy }

// Done reports whether the execution has completed.
func (e *Execution) Done() bool { return e.done }

// Canceled reports whether Cancel ended the execution.
func (e *Execution) Canceled() bool { return e.canceled }

// Report returns the final report, or nil while running.
func (e *Execution) Report() *Report { return e.report }

// Recorder returns this execution's trace recorder (the manager's shared one
// unless ExecOptions provided a per-execution recorder).
func (e *Execution) Recorder() *trace.Recorder { return e.rec }

// OnComplete registers a callback fired once with the final report.
func (e *Execution) OnComplete(fn func(*Report)) {
	if e.done {
		fn(e.report)
		return
	}
	e.onDone = append(e.onDone, fn)
}

// Pilots returns the execution's pilots (initial and adaptation-added) in
// submission order; nil before enactment.
func (e *Execution) Pilots() []*pilot.Pilot {
	if e.pm == nil {
		return nil
	}
	return e.pm.Pilots()
}

// Units returns the execution's managed units in submission order; nil
// before enactment.
func (e *Execution) Units() []*pilot.Unit {
	if e.um == nil {
		return nil
	}
	return e.um.Units()
}

// PreemptPilot preempts one non-final pilot on the named resource, as when
// the resource manager reclaims the allocation mid-run. Units the pilot held
// return to the unit manager for rescheduling on surviving pilots (or a
// replacement, with ReplaceLostPilots). It reports whether a pilot was
// preempted.
func (e *Execution) PreemptPilot(resource, reason string) bool {
	for _, p := range e.Pilots() {
		if p.Resource() == resource && !p.State().Final() {
			e.pm.Preempt(p, reason)
			return true
		}
	}
	return false
}

// Enacted reports whether Enact ran: an enacted execution has submitted
// pilots and scheduled events, so its state is bound to this manager's
// engine. A prepared, never-enacted execution holds no engine state and can
// be discarded and re-prepared on another manager — the migration-safe half
// of the queued-vs-enacted distinction.
func (e *Execution) Enacted() bool { return e.enacted }

// Cancel aborts the execution: every non-final unit is canceled, all pilots
// are torn down, and the execution completes immediately with a report that
// accounts the canceled units. Canceling a prepared, never-enacted execution
// completes it directly with every unit accounted as canceled. Canceling a
// finished execution is a no-op. Must run under the engine's callback
// serialization (sim.Locked) when the engine is concurrent.
func (e *Execution) Cancel(reason string) {
	if e.done {
		return
	}
	e.canceled = true
	e.rec.Record(e.m.eng.Now(), "em", "CANCELED", reason)
	if !e.enacted {
		e.ended = e.m.eng.Now()
		e.done = true
		e.rec.Record(e.ended, "em", "DONE", "")
		e.report = CanceledReport(e.workload)
		e.report.Strategy = e.strategy
		for _, fn := range e.onDone {
			fn(e.report)
		}
		e.onDone = nil
		return
	}
	// Canceling the last unit fires the unit manager's completion callback,
	// which runs finish: pilot teardown and report assembly happen there.
	e.um.CancelAll()
}

// CanceledReport builds the report of a workload canceled before enactment:
// no time passed, nothing activated, and every unit accounts as canceled.
func CanceledReport(w *skeleton.Workload) *Report {
	return &Report{
		UnitsCanceled:   w.TotalTasks(),
		PilotWaits:      make(map[string]time.Duration),
		UnitsByResource: make(map[string]int),
	}
}

// Execute enacts a strategy for a workload: pilots are described and
// submitted in randomized order (step 4–5), units are scheduled onto them
// (step 6), outputs are staged back, and all pilots are canceled when the
// workload completes. It returns immediately; completion is observed via
// OnComplete or by running the engine (see ExecuteAndWait and WaitFor).
func (m *Manager) Execute(w *skeleton.Workload, s Strategy) (*Execution, error) {
	return m.ExecuteWith(w, s, ExecOptions{})
}

// ExecuteWith is Execute with per-execution scoping (recorder, namespace):
// the PrepareWith + Enact composition for callers that enact on the spot.
func (m *Manager) ExecuteWith(w *skeleton.Workload, s Strategy, opts ExecOptions) (*Execution, error) {
	e, err := m.PrepareWith(w, s, opts)
	if err != nil {
		return nil, err
	}
	if err := e.Enact(); err != nil {
		return nil, err
	}
	return e, nil
}

// PrepareWith validates a workload/strategy pair and returns a prepared
// Execution without enacting it: no pilots are submitted, nothing is
// scheduled on the engine, no randomness is drawn and nothing is recorded,
// so a prepared execution may still be discarded — and the workload
// re-prepared against a different manager — at zero cost. That queued-vs-
// enacted boundary (see Enacted) is what makes cross-shard job migration
// safe: only work that never touched an engine is handed off.
func (m *Manager) PrepareWith(w *skeleton.Workload, s Strategy, opts ExecOptions) (*Execution, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if w.TotalTasks() == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	rec := opts.Recorder
	if rec == nil {
		rec = m.rec
	}
	return &Execution{m: m, rec: rec, ns: opts.Namespace, workload: w, strategy: s}, nil
}

// Enact crosses a prepared execution into the enacted state: pilots are
// described and submitted in randomized order, units are scheduled onto
// them, and from here on the execution is bound to its manager's engine.
// Enacting twice is an error.
func (e *Execution) Enact() error {
	if e.enacted {
		return fmt.Errorf("core: execution already enacted")
	}
	m, s := e.m, e.strategy
	e.enacted = true
	e.started = m.eng.Now()
	e.rec.Record(m.eng.Now(), "em", "ENACTING", s.String())

	sys := pilot.NewSystem(m.eng, m.session, m.links, e.rec, m.cfg, m.rng)
	if e.ns != "" {
		sys.SetNamespace(e.ns)
	}
	e.pm = pilot.NewPilotManager(sys)
	e.um = pilot.NewUnitManager(sys, s.Scheduler.build())

	// Randomize pilot submission order to decorrelate from resource order,
	// as the paper's experiments did.
	order := make([]string, len(s.Resources))
	copy(order, s.Resources)
	if m.rng != nil {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, resource := range order {
		p, err := e.pm.Submit(pilot.PilotDescription{
			Resource: resource,
			Cores:    s.PilotCores,
			Walltime: s.PilotWalltime,
		})
		if err != nil {
			e.pm.CancelAll()
			return fmt.Errorf("core: submitting pilot to %s: %w", resource, err)
		}
		e.um.AddPilot(p)
	}

	descs := unitDescriptions(e.workload)
	e.um.OnCompletion(func() { e.finish() })
	if err := e.um.Submit(descs); err != nil {
		e.pm.CancelAll()
		return err
	}
	return nil
}

// finish cancels pilots, assembles the report and fires callbacks.
func (e *Execution) finish() {
	e.pm.CancelAll()
	e.ended = e.m.eng.Now()
	e.done = true
	e.rec.Record(e.ended, "em", "DONE", "")
	e.report = buildReport(e)
	for _, fn := range e.onDone {
		fn(e.report)
	}
	e.onDone = nil
}

// WaitFor is the manager's engine pump, the single drain path for blocking
// callers. On a steppable (virtual-time) engine it fires events until the
// execution completes — stepping rather than draining, so periodic
// components such as bundle monitors keep running without blocking
// completion. On a self-advancing engine (RealTime) it blocks until the
// completion callback fires. Multi-tenant façades layer their own fair,
// cancelable pump on top of Execute; WaitFor is the single-driver case.
func (m *Manager) WaitFor(e *Execution) (*Report, error) {
	if st, ok := m.eng.(sim.Stepper); ok {
		for !e.done && st.Step() {
		}
		if !e.done {
			return nil, e.IncompleteError()
		}
		return e.report, nil
	}
	done := make(chan struct{})
	sim.Locked(m.eng, func() {
		e.OnComplete(func(*Report) { close(done) })
	})
	<-done
	return e.report, nil
}

// IncompleteError describes an execution stuck after the engine drained:
// which pilot and unit states it wedged in, the context needed to diagnose
// a run that can no longer make progress.
func (e *Execution) IncompleteError() error {
	if !e.enacted {
		return fmt.Errorf("core: engine drained with the workload still queued, never enacted")
	}
	pilots := make(map[string]int)
	for _, p := range e.pm.Pilots() {
		pilots[p.State().String()]++
	}
	units := make(map[string]int)
	for _, u := range e.um.Units() {
		units[u.State().String()]++
	}
	return fmt.Errorf("core: engine drained but workload incomplete (pilots %v, units %v)", pilots, units)
}

// ExecuteAndWait is the synchronous convenience: enact the strategy, then
// pump the engine until the workload completes.
func (m *Manager) ExecuteAndWait(w *skeleton.Workload, s Strategy) (*Report, error) {
	e, err := m.Execute(w, s)
	if err != nil {
		return nil, err
	}
	return m.WaitFor(e)
}

// unitDescriptions converts skeleton tasks to compute-unit descriptions.
func unitDescriptions(w *skeleton.Workload) []pilot.UnitDescription {
	descs := make([]pilot.UnitDescription, 0, len(w.Tasks))
	for _, t := range w.Tasks {
		inputs := make([]pilot.InputFile, 0, len(t.Inputs))
		for _, f := range t.Inputs {
			inputs = append(inputs, pilot.InputFile{Bytes: f.Bytes, Producer: f.Producer})
		}
		descs = append(descs, pilot.UnitDescription{
			Name:        t.ID,
			Cores:       t.Cores,
			Duration:    t.Duration,
			Inputs:      inputs,
			OutputBytes: t.OutputBytes(),
			Deps:        t.Deps,
		})
	}
	return descs
}

// DeriveAndExecute is the full Execution Manager pipeline (Figure 1): gather
// information, derive the strategy, enact it, and wait for completion.
func (m *Manager) DeriveAndExecute(w *skeleton.Workload, cfg StrategyConfig) (*Report, error) {
	s, err := Derive(w, m.bundle, cfg, m.rng)
	if err != nil {
		return nil, err
	}
	return m.ExecuteAndWait(w, s)
}

// FeedbackWaits replays a report's observed pilot queue waits into the
// bundle's predictive history, so later derivations see fresher forecasts —
// the feedback loop staged execution (and any long-lived environment) uses.
func (m *Manager) FeedbackWaits(r *Report) {
	for pilotID, wait := range r.PilotWaits {
		if res := m.bundle.Resource(resourceOf(pilotID)); res != nil {
			res.ObserveWait(wait.Seconds())
		}
	}
}

// Links builds a LinkResolver over a name→link map, a convenience for
// callers assembling managers by hand.
func Links(links map[string]*netsim.Link) pilot.LinkResolver {
	return func(resource string) *netsim.Link { return links[resource] }
}
