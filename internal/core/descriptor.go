package core

import (
	"aimes/internal/skeleton"
)

// Descriptor is the serializable form of a job before enactment: the
// workload, the strategy derivation knobs (or a pre-derived strategy to
// enact verbatim), and the optional runtime-adaptation policy. It is the
// queued half of the queued-vs-enacted distinction that PrepareWith makes
// explicit — a descriptor holds no engine state, no randomness and no trace,
// so it can be handed to any manager: another shard's during cross-shard
// migration, or another process's over the worker-backend wire protocol.
// Every field is plain data (JSON-friendly) by construction.
type Descriptor struct {
	// Workload is the concrete task set to execute.
	Workload *skeleton.Workload `json:"workload"`
	// Strategy, when non-nil, is enacted verbatim and Config is ignored.
	Strategy *Strategy `json:"strategy,omitempty"`
	// Config holds the derivation knobs used when Strategy is nil. The
	// enacting manager derives against its own bundle and randomness, which
	// is what makes migration namespace- and seed-safe.
	Config StrategyConfig `json:"config"`
	// Adaptive, when non-nil, enables runtime strategy adaptation.
	Adaptive *AdaptiveConfig `json:"adaptive,omitempty"`
}

// Resolve returns the strategy a descriptor enacts on this manager: the
// pre-derived one verbatim, or a fresh derivation against the manager's
// bundle and randomness. Resolving against different managers legitimately
// yields different strategies — that is the re-derivation half of the
// migration-safe handoff.
func (m *Manager) Resolve(d *Descriptor) (Strategy, error) {
	if d.Strategy != nil {
		return *d.Strategy, nil
	}
	return Derive(d.Workload, m.bundle, d.Config, m.rng)
}
