package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"aimes/internal/sim"
	"aimes/internal/trace"
)

// Report is the instrumented outcome of one execution: TTC and its
// overlap-aware components, exactly as in the paper's Figure 3. Because the
// components overlap (staging during queue wait, executions in parallel),
// TTC < Tw + Tx + Ts.
type Report struct {
	Strategy Strategy

	// TTC is the time-to-completion: enactment start to last unit terminal.
	TTC time.Duration
	// Tw is the setup time: enactment start until the first pilot became
	// active (queue wait dominated). If no pilot ever activated, Tw = TTC.
	Tw time.Duration
	// Tx is the union of all unit execution spans, including the agent
	// dispatch stagger (Trp appears here, steepening Tx at high task
	// counts).
	Tx time.Duration
	// Ts is the union of all staging spans (input and output).
	Ts time.Duration

	UnitsDone     int
	UnitsFailed   int
	UnitsCanceled int
	TotalRestarts int

	// PilotWaits maps each pilot ID to its queue wait; pilots that never
	// activated are absent.
	PilotWaits map[string]time.Duration
	// UnitsByResource counts completed units per resource — how the backfill
	// scheduler actually spread the workload.
	UnitsByResource map[string]int
	// PilotsActivated counts pilots that became active before completion.
	PilotsActivated int
	// ExtraPilots counts pilots added by runtime adaptation
	// (Manager.ExecuteAdaptive).
	ExtraPilots int

	// Throughput is completed units per hour of TTC.
	Throughput float64

	// CoreHours is the total allocation consumed: Σ over activated pilots
	// of cores × active duration. The paper's §IV-B discusses this
	// space/time-efficiency trade-off: early binding on a right-sized pilot
	// wastes no walltime, while late binding holds extra pilots.
	CoreHours float64
	// BusyCoreHours is the portion spent executing units.
	BusyCoreHours float64
	// Efficiency is BusyCoreHours / CoreHours (0 when nothing activated).
	Efficiency float64
}

// buildReport derives the report from the execution's own trace.
func buildReport(e *Execution) *Report {
	rec := e.rec
	r := &Report{
		Strategy:        e.strategy,
		TTC:             e.ended.Sub(e.started),
		ExtraPilots:     e.extraPilots,
		PilotWaits:      make(map[string]time.Duration),
		UnitsByResource: make(map[string]int),
	}

	// Pilot activation: Tw = start → first ACTIVE.
	firstActive := sim.Forever
	for _, p := range e.pm.Pilots() {
		if p.ActiveAt() > 0 {
			r.PilotsActivated++
			r.PilotWaits[p.ID()] = p.Wait()
			if p.ActiveAt() < firstActive {
				firstActive = p.ActiveAt()
			}
		}
	}
	if firstActive == sim.Forever {
		r.Tw = r.TTC
	} else {
		r.Tw = firstActive.Sub(e.started)
	}

	// Tx and Ts from per-entity state spans in the trace.
	execSpans, stageSpans := componentSpans(rec, e.started)
	r.Tx = trace.UnionDuration(execSpans).Duration()
	r.Ts = trace.UnionDuration(stageSpans).Duration()

	for _, u := range e.um.Units() {
		switch u.State().String() {
		case "DONE":
			r.UnitsDone++
			r.BusyCoreHours += u.Description().Duration.Hours() * float64(u.Description().Cores)
			if p := u.Pilot(); p != nil {
				r.UnitsByResource[p.Resource()]++
			}
		case "FAILED":
			r.UnitsFailed++
		case "CANCELED":
			r.UnitsCanceled++
		}
		r.TotalRestarts += u.Attempts()
	}
	for _, p := range e.pm.Pilots() {
		if p.ActiveAt() == 0 {
			continue
		}
		end := p.EndedAt()
		if end == 0 {
			end = e.ended
		}
		r.CoreHours += end.Sub(p.ActiveAt()).Hours() * float64(p.Description().Cores)
	}
	if r.CoreHours > 0 {
		r.Efficiency = r.BusyCoreHours / r.CoreHours
	}
	if r.TTC > 0 {
		r.Throughput = float64(r.UnitsDone) / r.TTC.Hours()
	}
	return r
}

// componentSpans extracts execution and staging spans from the trace: for
// every unit entity, each EXECUTING / STAGING_* record opens a span that the
// entity's next record closes. Restarted units therefore contribute one span
// per attempt — middleware self-introspection, not approximation.
func componentSpans(rec *trace.Recorder, since sim.Time) (exec, stage []trace.Span) {
	perEntity := make(map[string][]trace.Record)
	for _, record := range rec.Records() {
		if record.Time < since {
			continue
		}
		if len(record.Entity) < 5 || record.Entity[:5] != "unit." {
			continue
		}
		perEntity[record.Entity] = append(perEntity[record.Entity], record)
	}
	for _, records := range perEntity {
		sort.SliceStable(records, func(i, j int) bool { return records[i].Time < records[j].Time })
		for i, record := range records {
			if i+1 >= len(records) {
				continue
			}
			span := trace.Span{Start: record.Time, End: records[i+1].Time}
			switch record.State {
			case "EXECUTING":
				exec = append(exec, span)
			case "STAGING_INPUT", "STAGING_OUTPUT":
				stage = append(stage, span)
			}
		}
	}
	return exec, stage
}

// WriteSummary prints a human-readable report.
func (r *Report) WriteSummary(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"strategy: %s\nTTC  %9.1fs\n Tw  %9.1fs (first pilot active)\n Tx  %9.1fs (execution union)\n Ts  %9.1fs (staging union)\nunits: %d done, %d failed, %d canceled, %d restarts\npilots activated: %d/%d\nthroughput: %.1f units/hour\nallocation: %.1f core-hours, %.0f%% busy\n",
		r.Strategy, r.TTC.Seconds(), r.Tw.Seconds(), r.Tx.Seconds(), r.Ts.Seconds(),
		r.UnitsDone, r.UnitsFailed, r.UnitsCanceled, r.TotalRestarts,
		r.PilotsActivated, r.Strategy.Pilots, r.Throughput, r.CoreHours, 100*r.Efficiency)
	return err
}
