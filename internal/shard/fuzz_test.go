package shard

import (
	"fmt"
	"strings"
	"testing"

	"aimes/internal/trace"
)

// TestSeedDecorrelationWide is the property the fuzzer below explores from
// arbitrary bases, pinned to the contract's range: for any environment seed,
// the first 1024 shard seeds are pairwise distinct.
func TestSeedDecorrelationWide(t *testing.T) {
	for _, base := range []int64{0, 1, -1, 42, -42, 1 << 62, -(1 << 62), 7777777777} {
		seen := make(map[int64]int, 1024)
		for k := 0; k < 1024; k++ {
			s := Seed(base, k)
			if prev, dup := seen[s]; dup {
				t.Fatalf("base %d: shards %d and %d share seed %d", base, prev, k, s)
			}
			seen[s] = k
		}
	}
}

// FuzzSeed asserts, for arbitrary environment seeds, that shard 0 keeps the
// base seed (the single-shard-reproduces-history contract) and that no two
// shards in [0, 1024) collide.
func FuzzSeed(f *testing.F) {
	for _, base := range []int64{0, 1, -1, 42, 1 << 40} {
		f.Add(base)
	}
	f.Fuzz(func(t *testing.T, base int64) {
		if Seed(base, 0) != base {
			t.Fatalf("Seed(%d, 0) = %d, want the base", base, Seed(base, 0))
		}
		seen := make(map[int64]int, 1024)
		for k := 0; k < 1024; k++ {
			s := Seed(base, k)
			if prev, dup := seen[s]; dup {
				t.Fatalf("base %d: shards %d and %d share seed %d", base, prev, k, s)
			}
			seen[s] = k
		}
	})
}

// TestNamespaceCollisionFreedom crosses shard and sequence ranges and checks
// that namespaces — and the trace entities they qualify — never collide,
// including the adversarial digit boundaries (shard 1/seq 11 vs shard 11/
// seq 1, and so on).
func TestNamespaceCollisionFreedom(t *testing.T) {
	owner := map[string][2]int{}
	emOwner := map[string][2]int{}
	unitOwner := map[string][2]int{}
	for shard := 0; shard < 48; shard++ {
		for seq := 1; seq <= 48; seq++ {
			ns := Namespace(shard, seq)
			key := [2]int{shard, seq}
			if prev, dup := owner[ns]; dup {
				t.Fatalf("namespace %q owned by both %v and %v", ns, prev, key)
			}
			owner[ns] = key
			em := trace.QualifyEntity("em", ns)
			if prev, dup := emOwner[em]; dup {
				t.Fatalf("qualified em %q owned by both %v and %v", em, prev, key)
			}
			emOwner[em] = key
			unit := trace.QualifyEntity("unit.task-0001", ns)
			if prev, dup := unitOwner[unit]; dup {
				t.Fatalf("qualified unit %q owned by both %v and %v", unit, prev, key)
			}
			unitOwner[unit] = key
		}
	}
}

// FuzzNamespace asserts injectivity of Namespace and of QualifyEntity under
// it for arbitrary shard/sequence pairs: distinct pairs must produce
// distinct namespaces and distinct qualified entities, and the namespace
// must stay parseable (no '.' — the aggregate-trace separator).
func FuzzNamespace(f *testing.F) {
	f.Add(0, 1, 3, 17)
	f.Add(1, 11, 11, 1)
	f.Add(2, 2, 2, 2)
	f.Fuzz(func(t *testing.T, shardA, seqA, shardB, seqB int) {
		nsA, nsB := Namespace(shardA, seqA), Namespace(shardB, seqB)
		if strings.ContainsRune(nsA, '.') {
			t.Fatalf("namespace %q contains the entity separator '.'", nsA)
		}
		same := shardA == shardB && seqA == seqB
		if (nsA == nsB) != same {
			t.Fatalf("Namespace(%d,%d)=%q vs Namespace(%d,%d)=%q: injectivity violated",
				shardA, seqA, nsA, shardB, seqB, nsB)
		}
		for _, entity := range []string{"em", "unit.t0", "unit.a.b-c"} {
			qa, qb := trace.QualifyEntity(entity, nsA), trace.QualifyEntity(entity, nsB)
			if (qa == qb) != same {
				t.Fatalf("QualifyEntity(%q) collides: %q (s%d-j%d) vs %q (s%d-j%d)",
					entity, qa, shardA, seqA, qb, shardB, seqB)
			}
		}
		// A namespaced pilot ID embeds the namespace in its final segment;
		// distinct namespaces must keep pilot IDs distinct for equal
		// resources and sequence numbers.
		pa := fmt.Sprintf("pilot.stampede.%s-1", nsA)
		pb := fmt.Sprintf("pilot.stampede.%s-1", nsB)
		if (pa == pb) != same {
			t.Fatalf("pilot IDs collide across namespaces: %q vs %q", pa, pb)
		}
	})
}
