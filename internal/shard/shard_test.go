package shard

import (
	"strings"
	"testing"
)

func TestRoundRobinCycles(t *testing.T) {
	p := NewPicker(3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		k, err := p.Pick(RoundRobin, 0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if k != w {
			t.Fatalf("pick %d = shard %d, want %d", i, k, w)
		}
	}
}

func TestLeastLoadedPicksMinimumWithLowIndexTies(t *testing.T) {
	p := NewPicker(4)
	loads := []float64{5, 2, 2, 7}
	k, err := p.Pick(LeastLoaded, 0, 0, func(i int) float64 { return loads[i] })
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("least-loaded picked %d, want 1 (lowest-index tie)", k)
	}
	loads[1] = 9
	if k, _ = p.Pick(LeastLoaded, 0, 0, func(i int) float64 { return loads[i] }); k != 2 {
		t.Fatalf("least-loaded picked %d, want 2", k)
	}
}

func TestLeastLoadedDoesNotAdvanceRoundRobin(t *testing.T) {
	p := NewPicker(2)
	if _, err := p.Pick(LeastLoaded, 0, 0, func(int) float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if k, _ := p.Pick(RoundRobin, 0, 0, nil); k != 0 {
		t.Fatalf("least-loaded pick consumed the round-robin cursor (next = %d)", k)
	}
}

// fakeModel ranks shards by a fixed prediction table, recording the cost it
// was asked about.
type fakeModel struct {
	pred []float64
	cost float64
}

func (f *fakeModel) PredictedCompletion(k int, cost float64) float64 {
	f.cost = cost
	return f.pred[k]
}

func TestPredictivePicksMinimumPrediction(t *testing.T) {
	p := NewPicker(4)
	fm := &fakeModel{pred: []float64{50, 20, 20, 70}}
	p.SetModel(fm)
	k, err := p.Pick(Predictive, 0, 900, func(int) float64 { t.Fatal("predictive consulted load"); return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("predictive picked %d, want 1 (lowest-index tie)", k)
	}
	if fm.cost != 900 {
		t.Fatalf("model saw cost %v, want the job's 900", fm.cost)
	}
	if k, _ = p.Pick(RoundRobin, 0, 0, nil); k != 0 {
		t.Fatalf("predictive pick consumed the round-robin cursor (next = %d)", k)
	}
}

func TestPredictiveWithoutModelFallsBackToLeastLoaded(t *testing.T) {
	p := NewPicker(3)
	loads := []float64{5, 1, 3}
	k, err := p.Pick(Predictive, 0, 900, func(i int) float64 { return loads[i] })
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("unwired predictive picked %d, want least-loaded's 1", k)
	}
}

func TestStealerVetoCounter(t *testing.T) {
	s := NewStealer(2)
	if s.Vetoes() != 0 {
		t.Fatalf("fresh stealer has %d vetoes", s.Vetoes())
	}
	s.CountVeto()
	s.CountVeto()
	if s.Vetoes() != 2 {
		t.Fatalf("vetoes = %d, want 2", s.Vetoes())
	}
	if s.Migrations() != 0 {
		t.Fatal("vetoes leaked into the migration counter")
	}
}

func TestPinnedValidatesRange(t *testing.T) {
	p := NewPicker(2)
	if k, err := p.Pick(Pinned, 1, 0, nil); err != nil || k != 1 {
		t.Fatalf("pinned pick = %d, %v", k, err)
	}
	for _, bad := range []int{-1, 2, 99} {
		if _, err := p.Pick(Pinned, bad, 0, nil); err == nil {
			t.Fatalf("pinned shard %d accepted", bad)
		}
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	p := NewPicker(2)
	if _, err := p.Pick(Policy(42), 0, 0, nil); err == nil || !strings.Contains(err.Error(), "unknown placement") {
		t.Fatalf("unknown policy error = %v", err)
	}
}

func TestNewPickerPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPicker(0) did not panic")
		}
	}()
	NewPicker(0)
}

func TestSeedDerivation(t *testing.T) {
	const base = 42
	if Seed(base, 0) != base {
		t.Fatalf("shard 0 seed %d, want the base seed %d", Seed(base, 0), base)
	}
	seen := map[int64]int{}
	for k := 0; k < 64; k++ {
		s := Seed(base, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d share seed %d", prev, k, s)
		}
		seen[s] = k
	}
}

func TestNamespaceFormat(t *testing.T) {
	if ns := Namespace(0, 1); ns != "s0-j1" {
		t.Fatalf("Namespace(0,1) = %q", ns)
	}
	if ns := Namespace(3, 17); ns != "s3-j17" {
		t.Fatalf("Namespace(3,17) = %q", ns)
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		RoundRobin: "round-robin", LeastLoaded: "least-loaded", Pinned: "pinned", Predictive: "predictive",
	} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}
