package shard

import (
	"strings"
	"testing"
)

func TestRoundRobinCycles(t *testing.T) {
	p := NewPicker(3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		k, err := p.Pick(RoundRobin, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if k != w {
			t.Fatalf("pick %d = shard %d, want %d", i, k, w)
		}
	}
}

func TestLeastLoadedPicksMinimumWithLowIndexTies(t *testing.T) {
	p := NewPicker(4)
	loads := []float64{5, 2, 2, 7}
	k, err := p.Pick(LeastLoaded, 0, func(i int) float64 { return loads[i] })
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("least-loaded picked %d, want 1 (lowest-index tie)", k)
	}
	loads[1] = 9
	if k, _ = p.Pick(LeastLoaded, 0, func(i int) float64 { return loads[i] }); k != 2 {
		t.Fatalf("least-loaded picked %d, want 2", k)
	}
}

func TestLeastLoadedDoesNotAdvanceRoundRobin(t *testing.T) {
	p := NewPicker(2)
	if _, err := p.Pick(LeastLoaded, 0, func(int) float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if k, _ := p.Pick(RoundRobin, 0, nil); k != 0 {
		t.Fatalf("least-loaded pick consumed the round-robin cursor (next = %d)", k)
	}
}

func TestPinnedValidatesRange(t *testing.T) {
	p := NewPicker(2)
	if k, err := p.Pick(Pinned, 1, nil); err != nil || k != 1 {
		t.Fatalf("pinned pick = %d, %v", k, err)
	}
	for _, bad := range []int{-1, 2, 99} {
		if _, err := p.Pick(Pinned, bad, nil); err == nil {
			t.Fatalf("pinned shard %d accepted", bad)
		}
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	p := NewPicker(2)
	if _, err := p.Pick(Policy(42), 0, nil); err == nil || !strings.Contains(err.Error(), "unknown placement") {
		t.Fatalf("unknown policy error = %v", err)
	}
}

func TestNewPickerPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPicker(0) did not panic")
		}
	}()
	NewPicker(0)
}

func TestSeedDerivation(t *testing.T) {
	const base = 42
	if Seed(base, 0) != base {
		t.Fatalf("shard 0 seed %d, want the base seed %d", Seed(base, 0), base)
	}
	seen := map[int64]int{}
	for k := 0; k < 64; k++ {
		s := Seed(base, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d share seed %d", prev, k, s)
		}
		seen[s] = k
	}
}

func TestNamespaceFormat(t *testing.T) {
	if ns := Namespace(0, 1); ns != "s0-j1" {
		t.Fatalf("Namespace(0,1) = %q", ns)
	}
	if ns := Namespace(3, 17); ns != "s3-j17" {
		t.Fatalf("Namespace(3,17) = %q", ns)
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		RoundRobin: "round-robin", LeastLoaded: "least-loaded", Pinned: "pinned",
	} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}
