// Package shard implements the placement layer of the sharded execution
// environment: policies that map submitted jobs onto parallel simulation
// shards, and the seed derivation that keeps every shard's randomness
// deterministic yet decorrelated.
//
// A shard is one complete, independent simulation stack — engine, testbed,
// bundle, SAGA session, pilot system — so jobs placed on different shards
// execute with no shared engine lock. The Environment owns the shards; this
// package owns the decision of which shard a job lands on.
package shard

import "fmt"

// Policy selects how jobs map onto shards.
type Policy int

const (
	// RoundRobin cycles submissions across shards in order (the default).
	// With a fixed submission sequence it is deterministic.
	RoundRobin Policy = iota
	// LeastLoaded places each job on the shard with the smallest effective
	// load — pending expected core-seconds weighted by the shard's observed
	// drain rate, not a raw in-flight task count — balancing heterogeneous
	// tenants at the cost of placement depending on completion timing.
	LeastLoaded
	// Pinned places the job on an explicitly chosen shard. Tenants that need
	// cross-job determinism pin: same seed + same per-shard submission order
	// reproduces identical reports regardless of other shards' traffic.
	Pinned
	// Predictive places each job on the shard with the minimum predicted
	// completion time from the analytical cost model (internal/model): fitted
	// queue wait + backlog drain + the job's own service time at the shard's
	// fitted drain rate. With every shard at the cold-start fit this ranks
	// shards exactly like LeastLoaded; once fits diverge it prefers the shard
	// that will actually finish the job soonest, not the one with the least
	// backlog. Requires a PlacementModel (SetModel); falls back to
	// LeastLoaded when none is wired.
	Predictive
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case Pinned:
		return "pinned"
	case Predictive:
		return "predictive"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// PlacementModel is the seam between the picker and the analytical cost
// model: given a candidate shard and a job's expected demand in
// core-seconds, it returns the predicted completion time (virtual seconds)
// of placing the job there. Implementations must be safe for concurrent
// lock-free reads — Pick runs under the environment's submission lock but
// the model's fits are updated from completion paths on other goroutines.
type PlacementModel interface {
	PredictedCompletion(k int, cost float64) float64
}

// Picker assigns jobs to shards under a policy. It is not safe for
// concurrent use; the environment calls Pick under its submission lock. The
// load callback may read concurrently-updated counters (e.g. atomics).
type Picker struct {
	n     int
	next  int
	model PlacementModel
}

// NewPicker returns a picker over n shards. n must be at least 1.
func NewPicker(n int) *Picker {
	if n < 1 {
		panic(fmt.Sprintf("shard: NewPicker(%d): need at least one shard", n))
	}
	return &Picker{n: n}
}

// Shards reports the number of shards the picker places onto.
func (p *Picker) Shards() int { return p.n }

// SetModel wires the analytical cost model the Predictive policy consults.
// Call it once at environment construction, before any Pick.
func (p *Picker) SetModel(m PlacementModel) { p.model = m }

// Pick returns the shard index for one submission. pinned is the requested
// shard for Pinned; cost is the job's expected demand in core-seconds for
// Predictive; load reports the effective load of a shard for LeastLoaded
// (ties resolve to the lowest index). The caller fixes the load unit — the
// environment reports pending expected core-seconds divided by the shard's
// observed drain rate — and must make the pick-plus-reservation atomic
// under its submission lock: a picker that reads loads which only grow
// after the lock is released lets two concurrent submissions both land on
// the same "least loaded" shard.
func (p *Picker) Pick(policy Policy, pinned int, cost float64, load func(int) float64) (int, error) {
	switch policy {
	case RoundRobin:
		k := p.next
		p.next = (p.next + 1) % p.n
		return k, nil
	case LeastLoaded:
		best, bestLoad := 0, load(0)
		for k := 1; k < p.n; k++ {
			if l := load(k); l < bestLoad {
				best, bestLoad = k, l
			}
		}
		return best, nil
	case Predictive:
		if p.model == nil {
			return p.Pick(LeastLoaded, pinned, cost, load)
		}
		best, bestPred := 0, p.model.PredictedCompletion(0, cost)
		for k := 1; k < p.n; k++ {
			if pr := p.model.PredictedCompletion(k, cost); pr < bestPred {
				best, bestPred = k, pr
			}
		}
		return best, nil
	case Pinned:
		if pinned < 0 || pinned >= p.n {
			return 0, fmt.Errorf("shard: pinned shard %d out of range [0,%d)", pinned, p.n)
		}
		return pinned, nil
	}
	return 0, fmt.Errorf("shard: unknown placement policy %d", int(policy))
}

// seedStride decorrelates per-shard seeds: the 64-bit golden ratio, the
// standard Weyl-sequence increment (as in splitmix64).
const seedStride uint64 = 0x9E3779B97F4A7C15

// Seed derives shard k's base seed from the environment seed. Shard 0 keeps
// the base seed unchanged, so a single-shard environment reproduces the
// pre-sharding trajectories exactly; higher shards take distinct,
// deterministic offsets.
func Seed(base int64, k int) int64 {
	return base + int64(uint64(k)*seedStride)
}

// Namespace builds the shard-qualified job namespace "s<shard>-j<seq>" that
// scopes pilot IDs ("pilot.<resource>.s0-j3-1") and aggregate-trace entities.
// seq is the shard-local job sequence number, so a pinned tenant's namespaces
// — and therefore its pilot IDs and reports — do not depend on how much
// traffic other shards carry.
func Namespace(shard, seq int) string {
	return fmt.Sprintf("s%d-j%d", shard, seq)
}
