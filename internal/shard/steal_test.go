package shard

import "testing"

func TestStealerVictimPicksMostQueued(t *testing.T) {
	s := NewStealer(4)
	if v := s.Victim(-1); v != -1 {
		t.Fatalf("empty stealer victim = %d, want -1", v)
	}
	s.NoteQueued(1, 3)
	s.NoteQueued(3, 5)
	if v := s.Victim(-1); v != 3 {
		t.Fatalf("victim = %d, want 3", v)
	}
	if v := s.Victim(3); v != 1 {
		t.Fatalf("victim excluding 3 = %d, want 1", v)
	}
	s.NoteQueued(3, -5)
	s.NoteQueued(1, -3)
	if v := s.Victim(-1); v != -1 {
		t.Fatalf("drained stealer victim = %d, want -1", v)
	}
}

func TestStealerSealing(t *testing.T) {
	s := NewStealer(3)
	for k := 0; k < 3; k++ {
		if s.Sealed(k) {
			t.Fatalf("shard %d sealed at birth", k)
		}
	}
	s.Seal(1)
	if !s.Sealed(1) || s.Sealed(0) || s.Sealed(2) {
		t.Fatal("Seal(1) leaked to other shards or did not stick")
	}
}

func TestStealerCounters(t *testing.T) {
	s := NewStealer(2)
	s.CountMigration()
	s.CountMigration()
	s.CountForeignPump()
	if s.Migrations() != 2 || s.ForeignPumps() != 1 {
		t.Fatalf("counters = %d migrations, %d pumps", s.Migrations(), s.ForeignPumps())
	}
}

func TestShouldMigrateMargin(t *testing.T) {
	cases := []struct {
		origin, dest, cost float64
		want               bool
	}{
		{origin: 10, dest: 0, cost: 2, want: true},   // clear win
		{origin: 4, dest: 0, cost: 2, want: true},    // exactly at the margin
		{origin: 3, dest: 0, cost: 2, want: false},   // within one job of balance
		{origin: 10, dest: 10, cost: 2, want: false}, // balanced
		{origin: 2, dest: 0, cost: 0, want: true},    // zero cost clamps to 1
		{origin: 1, dest: 0, cost: 0, want: false},
	}
	for _, c := range cases {
		if got := ShouldMigrate(c.origin, c.dest, c.cost); got != c.want {
			t.Fatalf("ShouldMigrate(%v, %v, %v) = %v, want %v", c.origin, c.dest, c.cost, got, c.want)
		}
	}
	// Self-limiting: applying the verdict repeatedly converges instead of
	// ping-ponging a job between two shards forever.
	origin, dest, cost := 10.0, 0.0, 1.0
	for moves := 0; ; moves++ {
		if moves > 10 {
			t.Fatal("migration did not converge")
		}
		if !ShouldMigrate(origin, dest, cost) {
			if ShouldMigrate(dest, origin, cost) {
				t.Fatalf("ping-pong at origin=%v dest=%v", origin, dest)
			}
			break
		}
		origin -= cost
		dest += cost
	}
}

func TestNewStealerPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStealer(0) did not panic")
		}
	}()
	NewStealer(0)
}
