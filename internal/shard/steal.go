package shard

import (
	"fmt"
	"sync/atomic"
)

// Stealer is the coordination layer for cross-shard work stealing: the one
// piece of state that is deliberately shared across shards. It holds only
// atomic counters and placement verdicts — which shards have stealable
// queued jobs, which are sealed against migrants, and how much stealing has
// happened — never any engine or workload state, so the simulation hot path
// stays shard-local. The environment owns the actual job queues and performs
// the two-phase handoff (pop from the origin under its engine lock, then
// land on the destination under its lock, never holding both); the Stealer
// decides and accounts.
type Stealer struct {
	queued       []atomic.Int64 // migratable jobs queued per shard
	sealed       []atomic.Bool  // shards hosting pinned, non-migratable tenants
	migrations   atomic.Int64
	vetoed       atomic.Int64
	foreignPumps atomic.Int64
}

// NewStealer returns a stealer coordinating n shards. n must be at least 1.
func NewStealer(n int) *Stealer {
	if n < 1 {
		panic(fmt.Sprintf("shard: NewStealer(%d): need at least one shard", n))
	}
	return &Stealer{
		queued: make([]atomic.Int64, n),
		sealed: make([]atomic.Bool, n),
	}
}

// Shards reports the number of shards the stealer coordinates.
func (s *Stealer) Shards() int { return len(s.queued) }

// NoteQueued adjusts shard k's count of queued migratable jobs. The
// environment calls it under shard k's engine lock whenever a migratable job
// enters or leaves k's admission queue.
func (s *Stealer) NoteQueued(k int, delta int64) { s.queued[k].Add(delta) }

// Queued reports shard k's count of queued migratable jobs.
func (s *Stealer) Queued(k int) int64 { return s.queued[k].Load() }

// Seal permanently closes shard k to incoming migrants. The environment
// seals a shard the moment a pinned, non-migratable job is submitted to it:
// from then on no foreign job lands there, so the pinned tenant's per-shard
// determinism contract survives other shards' migrations. Outgoing
// migratable jobs may still leave a sealed shard.
func (s *Stealer) Seal(k int) { s.sealed[k].Store(true) }

// Sealed reports whether shard k rejects incoming migrants.
func (s *Stealer) Sealed(k int) bool { return s.sealed[k].Load() }

// Victim returns the shard with the most queued migratable jobs, excluding
// self (pass a negative self to exclude nothing). It returns -1 when no
// shard has stealable work.
func (s *Stealer) Victim(self int) int {
	best, bestQueued := -1, int64(0)
	for k := range s.queued {
		if k == self {
			continue
		}
		if q := s.queued[k].Load(); q > bestQueued {
			best, bestQueued = k, q
		}
	}
	return best
}

// CountMigration records one completed job handoff.
func (s *Stealer) CountMigration() { s.migrations.Add(1) }

// Migrations reports how many queued jobs were handed off between shards.
func (s *Stealer) Migrations() int64 { return s.migrations.Load() }

// CountVeto records one migration candidate the cost model's benefit gate
// refused: a queued job with a willing destination where the predicted gain
// did not cover the handoff. Distinct from rounds that simply found no
// candidate — a climbing veto count means imbalance exists but moving would
// not pay.
func (s *Stealer) CountVeto() { s.vetoed.Add(1) }

// Vetoes reports how many migration candidates the benefit gate refused.
func (s *Stealer) Vetoes() int64 { return s.vetoed.Load() }

// CountForeignPump records one bounded event batch a waiter fired on a shard
// other than its own job's.
func (s *Stealer) CountForeignPump() { s.foreignPumps.Add(1) }

// ForeignPumps reports how many foreign event batches waiters fired.
func (s *Stealer) ForeignPumps() int64 { return s.foreignPumps.Load() }

// ShouldMigrate reports whether moving a job of the given cost (expected
// core-seconds, in the same unit as the loads) from origin to dest reduces
// imbalance enough to pay for the handoff: the destination must remain
// strictly better off than the origin even after receiving the job. The
// margin makes stealing self-limiting — once loads are within one job of
// each other, nothing moves, so jobs cannot ping-pong between shards.
func ShouldMigrate(originLoad, destLoad, cost float64) bool {
	if cost <= 0 {
		cost = 1
	}
	return destLoad+cost <= originLoad-cost
}
