// Package modelcheck is the cost model's validation battery: it replays a
// deterministic mix of workloads through a live Environment, records each
// job's predicted completion (taken at enactment) against the completion
// the simulator actually produced, and scores the pairs into a
// model.Fidelity that CI compares against the committed baseline
// (MODEL_baseline.json, via cmd/model-check or TestModelFidelity).
//
// Jobs run strictly sequentially — submit, wait, next — so every run of the
// battery visits the same virtual trajectory and the fits warm under the
// same observation order. The first jobs of each workload kind are warmup:
// they are predicted from the cold seed (which deliberately mirrors the
// pre-model heuristics, not the simulator) and are excluded from scoring.
// What the gate measures is the steady-state twin: how well a warmed model
// predicts the simulator it shadows.
package modelcheck

import (
	"context"
	"fmt"
	"time"

	"aimes"
	"aimes/internal/model"
	"aimes/internal/scenario/workload"
	"aimes/internal/skeleton"
)

// Options tune the battery. Zero values take the documented defaults.
type Options struct {
	// Shards is the environment's shard count (default 2).
	Shards int
	// Warmup is the number of leading jobs per workload kind excluded from
	// scoring (default 4).
	Warmup int
	// Scored is the number of scored jobs per workload kind (default 8).
	Scored int
	// Seed is the base deterministic seed (default 20260808).
	Seed int64
	// Timeout bounds the wall-clock wait per job (default 2 minutes; the
	// engine runs in virtual time, so this only trips on a wedged run).
	Timeout time.Duration
	// Tasks is the task count per job (default 32).
	Tasks int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.Warmup <= 0 {
		o.Warmup = 4
	}
	if o.Scored <= 0 {
		o.Scored = 8
	}
	if o.Seed == 0 {
		o.Seed = 20260808
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.Tasks <= 0 {
		o.Tasks = 32
	}
	return o
}

// kind is one workload family of the battery.
type kind struct {
	name string
	gen  func(tasks int, seed int64) (*skeleton.Workload, error)
}

// battery is the fixed workload mix: the paper's uniform and Gaussian task
// bags plus the scenario engine's bounded-Pareto straggler mix, so the model
// is scored on both homogeneous and heavy-tailed demand.
func battery(tasks int) []kind {
	return []kind{
		{"uniform", func(n int, seed int64) (*skeleton.Workload, error) {
			return aimes.GenerateWorkload(aimes.BagOfTasks(n, aimes.UniformDuration()), seed)
		}},
		{"gaussian", func(n int, seed int64) (*skeleton.Workload, error) {
			return aimes.GenerateWorkload(aimes.BagOfTasks(n, aimes.GaussianDuration()), seed)
		}},
		{"heavy-tail", func(n int, seed int64) (*skeleton.Workload, error) {
			return workload.Generate(workload.Params{
				Process: workload.HeavyTailed, Tasks: n,
			}, seed)
		}},
	}
}

// Run executes the battery and returns the aggregate score plus every scored
// sample (for diagnostics and history records). Each workload kind gets a
// fresh environment — and so a fresh, cold model — making the warmup
// trajectory per-kind deterministic and independent of battery order.
func Run(opts Options) (model.Fidelity, []model.Sample, error) {
	opts = opts.withDefaults()
	cfg := aimes.JobConfig{
		StrategyConfig: aimes.StrategyConfig{
			Binding: aimes.LateBinding, Scheduler: aimes.SchedBackfill, Pilots: 2,
		},
		Placement: aimes.PlacePredictive,
	}
	var samples []model.Sample
	for ki, k := range battery(opts.Tasks) {
		env, err := aimes.NewEnv(
			aimes.WithSeed(opts.Seed+int64(ki)), aimes.WithShards(opts.Shards))
		if err != nil {
			return model.Fidelity{}, nil, fmt.Errorf("modelcheck %s: %w", k.name, err)
		}
		for i := 0; i < opts.Warmup+opts.Scored; i++ {
			w, err := k.gen(opts.Tasks, opts.Seed+int64(1000*ki+i))
			if err != nil {
				env.Close()
				return model.Fidelity{}, nil, fmt.Errorf("modelcheck %s job %d: %w", k.name, i, err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
			j, err := env.Submit(ctx, w, cfg)
			if err != nil {
				cancel()
				env.Close()
				return model.Fidelity{}, nil, fmt.Errorf("modelcheck %s job %d: %w", k.name, i, err)
			}
			r, err := j.Wait(ctx)
			cancel()
			if err != nil {
				env.Close()
				return model.Fidelity{}, nil, fmt.Errorf("modelcheck %s job %d: %w", k.name, i, err)
			}
			if i < opts.Warmup {
				continue
			}
			samples = append(samples, model.Sample{
				Workload:  k.name,
				Job:       i,
				Shard:     j.Shard(),
				Predicted: j.PredictedTTC().Seconds(),
				Observed:  r.TTC.Seconds(),
			})
		}
		env.Close()
	}
	return model.Score(samples), samples, nil
}
