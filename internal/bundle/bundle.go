// Package bundle implements the paper's Bundle abstraction: a uniform
// characterization of heterogeneous resources across compute, network and
// storage categories, exposed through three interfaces — querying (on-demand
// and predictive modes), monitoring (threshold subscriptions) and discovery
// (requirement-expression matching, the paper's "future work" interface).
package bundle

import (
	"fmt"
	"time"

	"aimes/internal/site"
)

// ComputeInfo is the compute-category representation of one resource.
type ComputeInfo struct {
	Name         string
	Architecture string
	Nodes        int
	CoresPerNode int
	TotalCores   int

	// Dynamic state from the on-demand query mode.
	FreeNodes          int
	RunningJobs        int
	QueuedJobs         int
	QueuedNodeSeconds  float64
	Utilization        float64
	InstantUtilization float64

	// SetupTime is the predicted median queue wait — the paper's
	// platform-neutral "setup time" measure (queue wait on HPC, VM startup
	// on clouds).
	SetupTime time.Duration
}

// NetworkInfo is the network-category representation.
type NetworkInfo struct {
	BandwidthMBps float64
	Latency       time.Duration
	// ActiveTransfers is the current staging concurrency.
	ActiveTransfers int
}

// StorageInfo is the storage-category representation.
type StorageInfo struct {
	CapacityGB float64
}

// Resource is one resource bundle entry: a live characterization agent
// attached to a site. It does not own the resource — multiple bundles may
// share a site.
type Resource struct {
	s       *site.Site
	history []float64 // queue waits in seconds, oldest first
	maxHist int
}

// NewResource attaches a characterization agent to a site.
func NewResource(s *site.Site) *Resource {
	return &Resource{s: s, maxHist: 4096}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.s.Name() }

// Site exposes the underlying site (used by the execution layer to reach the
// SAGA adaptor; bundles themselves never submit work).
func (r *Resource) Site() *site.Site { return r.s }

// Compute performs an on-demand compute query.
func (r *Resource) Compute() ComputeInfo {
	cfg := r.s.Config()
	snap := r.s.Queue().Snapshot()
	setup := time.Duration(0)
	if med, ok := r.Predict(0.5, 0.95); ok {
		setup = med
	}
	return ComputeInfo{
		Name:               cfg.Name,
		Architecture:       cfg.Architecture,
		Nodes:              cfg.Nodes,
		CoresPerNode:       cfg.CoresPerNode,
		TotalCores:         cfg.Cores(),
		FreeNodes:          snap.FreeNodes,
		RunningJobs:        snap.RunningJobs,
		QueuedJobs:         snap.QueuedJobs,
		QueuedNodeSeconds:  snap.QueuedNodeSeconds,
		Utilization:        snap.Utilization,
		InstantUtilization: snap.InstantUtilization,
		SetupTime:          setup,
	}
}

// Network performs an on-demand network query.
func (r *Resource) Network() NetworkInfo {
	cfg := r.s.Config()
	return NetworkInfo{
		BandwidthMBps:   cfg.BandwidthMBps,
		Latency:         cfg.NetLatency,
		ActiveTransfers: r.s.Link().Active(),
	}
}

// Storage performs an on-demand storage query.
func (r *Resource) Storage() StorageInfo {
	return StorageInfo{CapacityGB: r.s.Config().StorageGB}
}

// EstimateTransfer answers the paper's end-to-end query "how long would it
// take to transfer a file of this size to the resource": an idle-link
// estimate, useful within an order of magnitude.
func (r *Resource) EstimateTransfer(bytes int64) time.Duration {
	return r.s.Link().Estimate(bytes)
}

// ObserveWait records one observed queue wait (seconds) into the predictive
// history. The execution manager feeds pilot waits back; emergent sites also
// contribute background-job waits via Refresh.
func (r *Resource) ObserveWait(seconds float64) {
	r.history = append(r.history, seconds)
	if len(r.history) > r.maxHist {
		r.history = r.history[len(r.history)-r.maxHist:]
	}
}

// Refresh pulls the site queue's recent wait observations into the agent's
// history (monitoring agents poll like this in the real system).
func (r *Resource) Refresh() {
	for _, w := range r.s.Queue().WaitHistory() {
		r.ObserveWait(w)
	}
}

// HistoryLen reports the number of recorded wait observations.
func (r *Resource) HistoryLen() int { return len(r.history) }

// Predict implements the predictive query mode for queue waits: the QBETS-
// style conservative empirical quantile (see predictor.go). It returns the
// predicted bound for the given quantile at the given confidence, and false
// when the history is too thin to predict.
func (r *Resource) Predict(quantile, confidence float64) (time.Duration, bool) {
	secs, ok := QuantileBound(r.history, quantile, confidence)
	if !ok {
		return 0, false
	}
	return time.Duration(secs * float64(time.Second)), true
}

// Bundle aggregates resource entries and exposes aggregated operations, "a
// convenient handle for performing aggregated operations such as querying
// and monitoring".
type Bundle struct {
	resources map[string]*Resource
	order     []string
}

// New builds a bundle over the given sites.
func New(sites []*site.Site) *Bundle {
	b := &Bundle{resources: make(map[string]*Resource)}
	for _, s := range sites {
		r := NewResource(s)
		b.resources[s.Name()] = r
		b.order = append(b.order, s.Name())
	}
	return b
}

// Add registers another resource. It returns an error on duplicates.
func (b *Bundle) Add(s *site.Site) error {
	if _, dup := b.resources[s.Name()]; dup {
		return fmt.Errorf("bundle: duplicate resource %q", s.Name())
	}
	b.resources[s.Name()] = NewResource(s)
	b.order = append(b.order, s.Name())
	return nil
}

// Resource returns the named entry, or nil.
func (b *Bundle) Resource(name string) *Resource { return b.resources[name] }

// Names returns resource names in registration order.
func (b *Bundle) Names() []string {
	cp := make([]string, len(b.order))
	copy(cp, b.order)
	return cp
}

// Resources returns all entries in registration order.
func (b *Bundle) Resources() []*Resource {
	out := make([]*Resource, 0, len(b.order))
	for _, n := range b.order {
		out = append(out, b.resources[n])
	}
	return out
}

// Size reports the number of resources.
func (b *Bundle) Size() int { return len(b.order) }

// QueryAll performs an on-demand compute query across the whole bundle.
func (b *Bundle) QueryAll() []ComputeInfo {
	out := make([]ComputeInfo, 0, b.Size())
	for _, r := range b.Resources() {
		out = append(out, r.Compute())
	}
	return out
}

// TotalCores aggregates capacity across the bundle.
func (b *Bundle) TotalCores() int {
	n := 0
	for _, r := range b.Resources() {
		n += r.s.Config().Cores()
	}
	return n
}

// env builds the discovery-expression environment for a resource.
func (r *Resource) env() map[string]value {
	cfg := r.s.Config()
	snap := r.s.Queue().Snapshot()
	medianWait := 0.0
	if med, ok := QuantileBound(r.history, 0.5, 0.95); ok {
		medianWait = med
	}
	return map[string]value{
		"name":           strVal(cfg.Name),
		"arch":           strVal(cfg.Architecture),
		"nodes":          numVal(float64(cfg.Nodes)),
		"cores_per_node": numVal(float64(cfg.CoresPerNode)),
		"cores":          numVal(float64(cfg.Cores())),
		"free_nodes":     numVal(float64(snap.FreeNodes)),
		"queued_jobs":    numVal(float64(snap.QueuedJobs)),
		"utilization":    numVal(snap.Utilization),
		"bandwidth_mbps": numVal(cfg.BandwidthMBps),
		"net_latency_ms": numVal(float64(cfg.NetLatency) / float64(time.Millisecond)),
		"storage_gb":     numVal(cfg.StorageGB),
		"median_wait_s":  numVal(medianWait),
	}
}

// Match implements the discovery interface: it returns the resources whose
// characterization satisfies the requirement expression, e.g.
//
//	cores >= 1024 && arch == "cray" && median_wait_s < 1800
//
// in registration order. A parse error is returned verbatim.
func (b *Bundle) Match(expr string) ([]*Resource, error) {
	ast, err := ParseExpr(expr)
	if err != nil {
		return nil, err
	}
	var out []*Resource
	for _, r := range b.Resources() {
		ok, err := ast.Eval(r.env())
		if err != nil {
			return nil, fmt.Errorf("bundle: evaluating %q against %s: %w", expr, r.Name(), err)
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// Discover builds a tailored bundle from a requirement expression — the
// paper's discovery interface: "let the user request resources based on
// abstract requirements so that a tailored bundle can be created". The new
// bundle shares the underlying resources (bundles never own resources), so
// accumulated predictive history carries over.
func (b *Bundle) Discover(expr string) (*Bundle, error) {
	matched, err := b.Match(expr)
	if err != nil {
		return nil, err
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("bundle: no resources satisfy %q", expr)
	}
	out := &Bundle{resources: make(map[string]*Resource)}
	for _, r := range matched {
		out.resources[r.Name()] = r
		out.order = append(out.order, r.Name())
	}
	return out, nil
}

// Subset builds a bundle restricted to the named resources, sharing entries
// with the parent. Unknown names are an error.
func (b *Bundle) Subset(names []string) (*Bundle, error) {
	out := &Bundle{resources: make(map[string]*Resource)}
	for _, n := range names {
		r := b.resources[n]
		if r == nil {
			return nil, fmt.Errorf("bundle: unknown resource %q (have %v)", n, b.order)
		}
		if _, dup := out.resources[n]; dup {
			return nil, fmt.Errorf("bundle: duplicate resource %q in subset", n)
		}
		out.resources[n] = r
		out.order = append(out.order, n)
	}
	return out, nil
}
