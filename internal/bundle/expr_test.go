package bundle

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"aimes/internal/batch"
	"aimes/internal/sim"
	"aimes/internal/site"
)

func evalOn(t *testing.T, expr string, env map[string]value) bool {
	t.Helper()
	ast, err := ParseExpr(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	ok, err := ast.Eval(env)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return ok
}

func testEnv() map[string]value {
	return map[string]value{
		"cores":       numVal(1024),
		"utilization": numVal(0.8),
		"arch":        strVal("cray"),
	}
}

func TestExprComparisons(t *testing.T) {
	env := testEnv()
	cases := []struct {
		expr string
		want bool
	}{
		{"cores >= 1024", true},
		{"cores > 1024", false},
		{"cores < 2048", true},
		{"cores <= 1023", false},
		{"cores == 1024", true},
		{"cores != 1024", false},
		{`arch == "cray"`, true},
		{`arch != "cray"`, false},
		{`arch == 'beowulf'`, false},
		{"utilization < 0.9", true},
	}
	for _, c := range cases {
		if got := evalOn(t, c.expr, env); got != c.want {
			t.Fatalf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestExprBooleanOperators(t *testing.T) {
	env := testEnv()
	cases := []struct {
		expr string
		want bool
	}{
		{`cores >= 1024 && arch == "cray"`, true},
		{`cores > 9999 && arch == "cray"`, false},
		{`cores > 9999 || arch == "cray"`, true},
		{`!(cores > 9999)`, true},
		{`!(cores > 9999) && !(utilization > 0.9)`, true},
		{`(cores > 9999 || arch == "cray") && utilization < 0.9`, true},
	}
	for _, c := range cases {
		if got := evalOn(t, c.expr, env); got != c.want {
			t.Fatalf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	// && binds tighter than ||: a || b && c == a || (b && c).
	env := map[string]value{"a": numVal(1), "b": numVal(0), "c": numVal(0)}
	if !evalOn(t, "a == 1 || b == 1 && c == 1", env) {
		t.Fatal("precedence wrong: expected true for a || (b && c)")
	}
}

func TestExprScientificNumbers(t *testing.T) {
	env := map[string]value{"x": numVal(1.5e6)}
	if !evalOn(t, "x == 1.5e6", env) {
		t.Fatal("scientific literal broken")
	}
	if !evalOn(t, "x > -2", env) {
		t.Fatal("negative literal broken")
	}
}

func TestExprParseErrors(t *testing.T) {
	bad := []string{
		"",
		"cores",
		"cores >=",
		"cores >= >=",
		"(cores >= 1",
		"cores >= 1 &&",
		`arch == "unterminated`,
		"cores >= 1 extra",
		"@bogus == 1",
		"1024 >= cores",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Fatalf("%q parsed successfully", src)
		}
	}
}

func TestExprEvalErrors(t *testing.T) {
	env := testEnv()
	cases := []string{
		"missing_field == 1",
		`cores == "string"`,
		`arch > "a"`, // ordering undefined for strings
	}
	for _, src := range cases {
		ast, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := ast.Eval(env); err == nil {
			t.Fatalf("%q evaluated successfully", src)
		}
	}
}

func TestExprString(t *testing.T) {
	ast, err := ParseExpr(`cores >= 1024 && arch == "cray" || !(nodes < 2)`)
	if err != nil {
		t.Fatal(err)
	}
	s := ast.String()
	for _, want := range []string{"cores >= 1024", `arch == "cray"`, "!"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestBundleMatch(t *testing.T) {
	eng := sim.NewSim()
	tb, err := site.NewTestbed(eng, site.DefaultTestbed(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	b := New(tb.Sites())
	// Only hopper is a cray in the default testbed.
	got, err := b.Match(`arch == "cray"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name() != "hopper" {
		t.Fatalf("cray match = %v", names(got))
	}
	// Large machines: stampede (102400) and hopper (153216).
	got, err = b.Match("cores >= 100000")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("large-machine match = %v", names(got))
	}
	// Everything matches a tautology.
	got, err = b.Match("nodes > 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("tautology match = %v", names(got))
	}
	// Parse errors surface.
	if _, err := b.Match("nodes >"); err == nil {
		t.Fatal("bad expression accepted")
	}
	// Unknown field errors surface.
	if _, err := b.Match("warp_drive == 1"); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func names(rs []*Resource) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name()
	}
	return out
}

// Property: parser round-trips its own String() output.
func TestExprRoundTripProperty(t *testing.T) {
	fields := []string{"cores", "nodes", "utilization"}
	ops := []string{"==", "!=", ">=", "<=", ">", "<"}
	prop := func(fi, oi uint8, val int16, negate bool) bool {
		src := fields[int(fi)%len(fields)] + " " + ops[int(oi)%len(ops)] + " " +
			sformat(float64(val))
		if negate {
			src = "!(" + src + ")"
		}
		ast, err := ParseExpr(src)
		if err != nil {
			return false
		}
		back, err := ParseExpr(ast.String())
		if err != nil {
			return false
		}
		env := map[string]value{
			"cores": numVal(100), "nodes": numVal(5), "utilization": numVal(0.5),
		}
		a, err1 := ast.Eval(env)
		b, err2 := back.Eval(env)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sformat(f float64) string {
	ast := cmpExpr{field: "x", op: "==", lit: numVal(f)}
	s := ast.String()
	return s[len("x == "):]
}

func TestMonitorThresholds(t *testing.T) {
	eng := sim.NewSim()
	tb, err := site.NewTestbed(eng, site.DefaultTestbed(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	b := New(tb.Sites())
	m := NewMonitor(eng, b, time.Minute)
	var events []Event
	err = m.Subscribe(Condition{
		Resource: "stampede", Metric: MetricQueuedJobs, Op: OpAbove, Threshold: 0.5,
	}, func(e Event) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the machine so a queued job appears, after 10 minutes.
	eng.Schedule(10*time.Minute, func() {
		s := tb.Site("stampede")
		for i := 0; i < 2; i++ {
			if err := s.Queue().Submit(&batch.Job{
				ID: "big", Nodes: 6400, Runtime: 5 * time.Hour, Walltime: 6 * time.Hour,
			}); err != nil {
				t.Error(err)
			}
		}
	})
	eng.RunUntil(sim.Time(40 * time.Minute))
	m.Stop()
	eng.Run()
	if len(events) != 1 {
		t.Fatalf("events = %d, want exactly 1 (edge-triggered)", len(events))
	}
	if events[0].Condition.Resource != "stampede" || events[0].Value < 1 {
		t.Fatalf("event = %+v", events[0])
	}
}

func TestMonitorSustain(t *testing.T) {
	eng := sim.NewSim()
	tb, err := site.NewTestbed(eng, site.DefaultTestbed(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	b := New(tb.Sites())
	m := NewMonitor(eng, b, time.Minute)
	fired := sim.Time(0)
	err = m.Subscribe(Condition{
		Resource: "gordon", Metric: MetricFreeNodes, Op: OpAbove, Threshold: 10,
		Sustain: 30 * time.Minute,
	}, func(e Event) {
		if fired == 0 {
			fired = e.Time
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(2 * time.Hour))
	m.Stop()
	if fired < sim.Time(30*time.Minute) {
		t.Fatalf("fired at %v, before sustain window elapsed", fired)
	}
	if fired > sim.Time(32*time.Minute) {
		t.Fatalf("fired at %v, long after sustain window", fired)
	}
}

func TestMonitorSubscribeValidation(t *testing.T) {
	eng := sim.NewSim()
	tb, _ := site.NewTestbed(eng, site.DefaultTestbed(), sim.NewRNG(1))
	b := New(tb.Sites())
	m := NewMonitor(eng, b, time.Minute)
	if err := m.Subscribe(Condition{Resource: "nope", Metric: MetricFreeNodes, Op: OpAbove}, func(Event) {}); err == nil {
		t.Fatal("unknown resource accepted")
	}
	if err := m.Subscribe(Condition{Resource: "gordon", Metric: "bogus", Op: OpAbove}, func(Event) {}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if err := m.Subscribe(Condition{Resource: "gordon", Metric: MetricFreeNodes, Op: "~"}, func(Event) {}); err == nil {
		t.Fatal("unknown operator accepted")
	}
	m.Stop()
}

// ExampleParseExpr shows the discovery requirement language.
func ExampleParseExpr() {
	expr, err := ParseExpr(`cores >= 1024 && arch == "cray"`)
	if err != nil {
		panic(err)
	}
	env := map[string]value{
		"cores": numVal(153216),
		"arch":  strVal("cray"),
	}
	ok, err := expr.Eval(env)
	if err != nil {
		panic(err)
	}
	fmt.Println(ok)
	// Output:
	// true
}
