package bundle

import (
	"math"
	"sort"
)

// QuantileBound is the predictive core of the bundle's queue-wait forecasts,
// a simplified QBETS (Queue Bounds Estimation from Time Series, Nurmi,
// Brevik & Wolski): given a history of observed waits, it returns a value w
// such that, under an i.i.d. assumption, the true q-quantile of the wait
// distribution is below w with the requested confidence.
//
// It selects the k-th order statistic where k is the conservative upper index
// of the binomial(n, q) count using the normal approximation:
//
//	k = ceil(n·q + z(confidence)·sqrt(n·q·(1-q)))
//
// The second return value is false when fewer than 8 observations exist —
// the paper's observation that queue-wait prediction "is extremely hard"
// starts with having no data.
func QuantileBound(history []float64, quantile, confidence float64) (float64, bool) {
	n := len(history)
	if n < 8 {
		return 0, false
	}
	if quantile <= 0 {
		quantile = 0.5
	}
	if quantile >= 1 {
		quantile = 0.99
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	sorted := make([]float64, n)
	copy(sorted, history)
	sort.Float64s(sorted)

	z := normalQuantile(confidence)
	nf := float64(n)
	k := int(math.Ceil(nf*quantile + z*math.Sqrt(nf*quantile*(1-quantile))))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return sorted[k-1], true
}

// normalQuantile returns the standard normal quantile via the
// Acklam/Beasley-Springer-Moro rational approximation, accurate to ~1e-9 —
// ample for confidence-index selection.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("bundle: normal quantile of p outside (0, 1)")
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const low, high = 0.02425, 1 - 0.02425
	switch {
	case p < low:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > high:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// EWMA is an exponentially weighted moving average used for utilization
// forecasting in the monitoring interface.
type EWMA struct {
	alpha float64
	value float64
	warm  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("bundle: EWMA alpha outside (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds in an observation and returns the new average.
func (e *EWMA) Add(v float64) float64 {
	if !e.warm {
		e.value = v
		e.warm = true
		return v
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (NaN before any observation).
func (e *EWMA) Value() float64 {
	if !e.warm {
		return math.NaN()
	}
	return e.value
}
