package bundle

import (
	"math"
	"testing"
	"time"

	"aimes/internal/batch"
	"aimes/internal/sim"
	"aimes/internal/site"
)

func testSites(t *testing.T, eng sim.Engine) []*site.Site {
	t.Helper()
	tb, err := site.NewTestbed(eng, site.DefaultTestbed(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return tb.Sites()
}

func TestBundleRegistry(t *testing.T) {
	eng := sim.NewSim()
	b := New(testSites(t, eng))
	if b.Size() != 5 {
		t.Fatalf("size %d, want 5", b.Size())
	}
	if b.Resource("stampede") == nil || b.Resource("hopper") == nil {
		t.Fatal("named lookup failed")
	}
	if b.Resource("nope") != nil {
		t.Fatal("unknown resource non-nil")
	}
	if len(b.Names()) != 5 || len(b.Resources()) != 5 {
		t.Fatal("accessors inconsistent")
	}
	if b.TotalCores() <= 0 {
		t.Fatal("TotalCores not positive")
	}
}

func TestBundleAddDuplicate(t *testing.T) {
	eng := sim.NewSim()
	sites := testSites(t, eng)
	b := New(sites[:1])
	if err := b.Add(sites[0]); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := b.Add(sites[1]); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 2 {
		t.Fatalf("size %d, want 2", b.Size())
	}
}

func TestOnDemandComputeQuery(t *testing.T) {
	eng := sim.NewSim()
	b := New(testSites(t, eng))
	info := b.Resource("stampede").Compute()
	if info.Name != "stampede" || info.Architecture != "beowulf" {
		t.Fatalf("identity wrong: %+v", info)
	}
	if info.TotalCores != 6400*16 {
		t.Fatalf("cores %d, want %d", info.TotalCores, 6400*16)
	}
	if info.FreeNodes != 6400 {
		t.Fatalf("free nodes %d on idle machine", info.FreeNodes)
	}
	all := b.QueryAll()
	if len(all) != 5 {
		t.Fatalf("QueryAll returned %d", len(all))
	}
}

func TestNetworkAndStorageQuery(t *testing.T) {
	eng := sim.NewSim()
	b := New(testSites(t, eng))
	r := b.Resource("comet")
	net := r.Network()
	if net.BandwidthMBps != 10 || net.Latency != 120*time.Millisecond {
		t.Fatalf("network info wrong: %+v", net)
	}
	if r.Storage().CapacityGB != 7000 {
		t.Fatalf("storage info wrong: %+v", r.Storage())
	}
	// Transfer estimate: 1 MB at 10 MB/s + 120 ms latency = 220 ms.
	est := r.EstimateTransfer(1 << 20)
	want := 120*time.Millisecond + time.Duration(float64(1<<20)/1e7*float64(time.Second))
	if diff := est - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("estimate %v, want ~%v", est, want)
	}
}

func TestPredictiveQuery(t *testing.T) {
	eng := sim.NewSim()
	b := New(testSites(t, eng))
	r := b.Resource("gordon")
	if _, ok := r.Predict(0.5, 0.95); ok {
		t.Fatal("prediction with no history should fail")
	}
	// Feed a known history: waits 1..100 seconds.
	for i := 1; i <= 100; i++ {
		r.ObserveWait(float64(i))
	}
	med, ok := r.Predict(0.5, 0.95)
	if !ok {
		t.Fatal("prediction failed with 100 observations")
	}
	// Conservative median of 1..100 at 95% confidence: above the plain
	// median, below ~the 70th percentile.
	if med.Seconds() < 50 || med.Seconds() > 70 {
		t.Fatalf("median bound %v, want in [50s, 70s]", med)
	}
	p90, _ := r.Predict(0.9, 0.95)
	if p90 <= med {
		t.Fatal("q=0.9 bound not above median bound")
	}
}

func TestObserveWaitBoundsHistory(t *testing.T) {
	eng := sim.NewSim()
	b := New(testSites(t, eng))
	r := b.Resource("gordon")
	for i := 0; i < 5000; i++ {
		r.ObserveWait(1)
	}
	if r.HistoryLen() > 4096 {
		t.Fatalf("history grew unbounded: %d", r.HistoryLen())
	}
}

func TestRefreshPullsQueueHistory(t *testing.T) {
	eng := sim.NewSim()
	cfg := site.Config{
		Name: "m", Nodes: 16, CoresPerNode: 8,
		WaitModel:     batch.WaitModel{MedianWait: time.Minute, Sigma: 0.5},
		BandwidthMBps: 10,
	}
	s, err := site.New(eng, cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	b := New([]*site.Site{s})
	// Run some jobs through the queue so WaitHistory populates.
	for i := 0; i < 10; i++ {
		if err := s.Queue().Submit(&batch.Job{
			ID: "j", Nodes: 1, Runtime: time.Minute, Walltime: time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	r := b.Resource("m")
	r.Refresh()
	if r.HistoryLen() != 10 {
		t.Fatalf("history %d after refresh, want 10", r.HistoryLen())
	}
}

func TestSetupTimeInComputeInfo(t *testing.T) {
	eng := sim.NewSim()
	b := New(testSites(t, eng))
	r := b.Resource("stampede")
	for i := 0; i < 50; i++ {
		r.ObserveWait(600)
	}
	info := r.Compute()
	if info.SetupTime != 600*time.Second {
		t.Fatalf("setup time %v, want 600s", info.SetupTime)
	}
}

func TestQuantileBoundEdgeCases(t *testing.T) {
	if _, ok := QuantileBound(nil, 0.5, 0.95); ok {
		t.Fatal("empty history predicted")
	}
	if _, ok := QuantileBound(make([]float64, 7), 0.5, 0.95); ok {
		t.Fatal("short history predicted")
	}
	h := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	v, ok := QuantileBound(h, 0.5, 0.95)
	if !ok || v != 5 {
		t.Fatalf("constant history bound %g ok=%v", v, ok)
	}
	// Degenerate quantile/confidence inputs are clamped, not panics.
	if _, ok := QuantileBound(h, -1, 2); !ok {
		t.Fatal("clamped inputs failed")
	}
}

func TestQuantileBoundIsConservative(t *testing.T) {
	// The bound must sit at or above the plain empirical quantile.
	h := make([]float64, 200)
	for i := range h {
		h[i] = float64(i)
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		bound, ok := QuantileBound(h, q, 0.95)
		if !ok {
			t.Fatal("prediction failed")
		}
		plain := q * 199
		if bound < plain {
			t.Fatalf("bound %g below plain quantile %g at q=%g", bound, plain, q)
		}
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.8413447, 1}, {0.9772499, 2}, {0.0227501, -2}, {0.95, 1.6449},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Fatalf("normalQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range p did not panic")
		}
	}()
	normalQuantile(0)
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if !math.IsNaN(e.Value()) {
		t.Fatal("cold EWMA should be NaN")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first value %g, want 10", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("after 20: %g, want 15", e.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad alpha did not panic")
		}
	}()
	NewEWMA(0)
}

func TestDiscoverTailoredBundle(t *testing.T) {
	eng := sim.NewSim()
	b := New(testSites(t, eng))
	// Seed history on one resource; the tailored bundle must share it.
	b.Resource("gordon").ObserveWait(123)
	sub, err := b.Discover("cores >= 16000 && cores <= 20000")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 1 || sub.Resource("gordon") == nil {
		t.Fatalf("discovered %v", sub.Names())
	}
	if sub.Resource("gordon").HistoryLen() != 1 {
		t.Fatal("tailored bundle does not share resource state")
	}
	if _, err := b.Discover("cores > 1e12"); err == nil {
		t.Fatal("empty discovery did not error")
	}
	if _, err := b.Discover("cores >"); err == nil {
		t.Fatal("bad expression did not error")
	}
}

func TestSubset(t *testing.T) {
	eng := sim.NewSim()
	b := New(testSites(t, eng))
	sub, err := b.Subset([]string{"comet", "hopper"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 2 || sub.Resource("comet") == nil || sub.Resource("hopper") == nil {
		t.Fatalf("subset = %v", sub.Names())
	}
	if _, err := b.Subset([]string{"atlantis"}); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := b.Subset([]string{"comet", "comet"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}
