package bundle

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The discovery interface's requirement language: boolean combinations of
// comparisons over resource characterization fields.
//
//	expr   := or
//	or     := and ( "||" and )*
//	and    := unary ( "&&" unary )*
//	unary  := "!" unary | "(" expr ")" | cmp
//	cmp    := ident op literal
//	op     := "==" | "!=" | ">=" | "<=" | ">" | "<"
//	literal:= number | quoted string
//
// Example: cores >= 1024 && arch == "cray" && median_wait_s < 1800

// value is a dynamically typed literal.
type value struct {
	num   float64
	str   string
	isStr bool
}

func numVal(f float64) value { return value{num: f} }
func strVal(s string) value  { return value{str: s, isStr: true} }

// Expr is a parsed requirement expression.
type Expr interface {
	// Eval evaluates against a characterization environment.
	Eval(env map[string]value) (bool, error)
	String() string
}

type orExpr struct{ left, right Expr }

func (e orExpr) Eval(env map[string]value) (bool, error) {
	l, err := e.left.Eval(env)
	if err != nil {
		return false, err
	}
	if l {
		return true, nil
	}
	return e.right.Eval(env)
}
func (e orExpr) String() string { return fmt.Sprintf("(%s || %s)", e.left, e.right) }

type andExpr struct{ left, right Expr }

func (e andExpr) Eval(env map[string]value) (bool, error) {
	l, err := e.left.Eval(env)
	if err != nil {
		return false, err
	}
	if !l {
		return false, nil
	}
	return e.right.Eval(env)
}
func (e andExpr) String() string { return fmt.Sprintf("(%s && %s)", e.left, e.right) }

type notExpr struct{ inner Expr }

func (e notExpr) Eval(env map[string]value) (bool, error) {
	v, err := e.inner.Eval(env)
	return !v, err
}
func (e notExpr) String() string { return "!" + e.inner.String() }

type cmpExpr struct {
	field string
	op    string
	lit   value
}

func (e cmpExpr) Eval(env map[string]value) (bool, error) {
	v, ok := env[e.field]
	if !ok {
		known := make([]string, 0, len(env))
		for k := range env {
			known = append(known, k)
		}
		return false, fmt.Errorf("unknown field %q (known: %s)", e.field, strings.Join(known, ", "))
	}
	if v.isStr != e.lit.isStr {
		return false, fmt.Errorf("type mismatch comparing %q", e.field)
	}
	if v.isStr {
		switch e.op {
		case "==":
			return v.str == e.lit.str, nil
		case "!=":
			return v.str != e.lit.str, nil
		default:
			return false, fmt.Errorf("operator %q not defined for strings", e.op)
		}
	}
	switch e.op {
	case "==":
		return v.num == e.lit.num, nil
	case "!=":
		return v.num != e.lit.num, nil
	case ">=":
		return v.num >= e.lit.num, nil
	case "<=":
		return v.num <= e.lit.num, nil
	case ">":
		return v.num > e.lit.num, nil
	case "<":
		return v.num < e.lit.num, nil
	}
	return false, fmt.Errorf("unknown operator %q", e.op)
}

func (e cmpExpr) String() string {
	if e.lit.isStr {
		return fmt.Sprintf("%s %s %q", e.field, e.op, e.lit.str)
	}
	return fmt.Sprintf("%s %s %g", e.field, e.op, e.lit.num)
}

// ParseExpr parses a requirement expression.
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("bundle: trailing input at %q", p.peek().text)
	}
	return e, nil
}

type token struct {
	kind string // ident, num, str, op, lparen, rparen, and, or, not
	text string
	num  float64
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{kind: "lparen"})
			i++
		case c == ')':
			toks = append(toks, token{kind: "rparen"})
			i++
		case strings.HasPrefix(src[i:], "&&"):
			toks = append(toks, token{kind: "and"})
			i += 2
		case strings.HasPrefix(src[i:], "||"):
			toks = append(toks, token{kind: "or"})
			i += 2
		case strings.HasPrefix(src[i:], "==") || strings.HasPrefix(src[i:], "!=") ||
			strings.HasPrefix(src[i:], ">=") || strings.HasPrefix(src[i:], "<="):
			toks = append(toks, token{kind: "op", text: src[i : i+2]})
			i += 2
		case c == '>' || c == '<':
			toks = append(toks, token{kind: "op", text: string(c)})
			i++
		case c == '!':
			toks = append(toks, token{kind: "not"})
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("bundle: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: "str", text: src[i+1 : j]})
			i = j + 1
		case unicode.IsDigit(rune(c)) || c == '-' || c == '.':
			j := i + 1
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' || src[j] == '+' || src[j] == '-') {
				// Stop '-'/'+' handling unless preceded by an exponent marker.
				if (src[j] == '+' || src[j] == '-') && src[j-1] != 'e' && src[j-1] != 'E' {
					break
				}
				j++
			}
			f, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("bundle: bad number %q: %w", src[i:j], err)
			}
			toks = append(toks, token{kind: "num", num: f})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(src) && (unicode.IsLetter(rune(src[j])) ||
				unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: "ident", text: src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("bundle: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{kind: "eof", text: "<eof>"}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == "or" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orExpr{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == "and" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andExpr{left, right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().kind {
	case "not":
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{inner}, nil
	case "lparen":
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != "rparen" {
			return nil, fmt.Errorf("bundle: expected ')', got %q", p.peek().text)
		}
		p.next()
		return e, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	id := p.next()
	if id.kind != "ident" {
		return nil, fmt.Errorf("bundle: expected field name, got %q", id.text)
	}
	op := p.next()
	if op.kind != "op" {
		return nil, fmt.Errorf("bundle: expected comparison operator after %q", id.text)
	}
	lit := p.next()
	switch lit.kind {
	case "num":
		return cmpExpr{field: id.text, op: op.text, lit: numVal(lit.num)}, nil
	case "str":
		return cmpExpr{field: id.text, op: op.text, lit: strVal(lit.text)}, nil
	}
	return nil, fmt.Errorf("bundle: expected literal after %q %s", id.text, op.text)
}
