package bundle

import (
	"fmt"
	"time"

	"aimes/internal/sim"
)

// Metric names a monitorable quantity.
type Metric string

// Monitorable metrics.
const (
	MetricUtilization   Metric = "utilization"    // time-averaged busy fraction
	MetricInstantUtil   Metric = "instant_util"   // busy fraction right now
	MetricFreeNodes     Metric = "free_nodes"     // idle nodes
	MetricQueuedJobs    Metric = "queued_jobs"    // queue depth
	MetricPredictedWait Metric = "predicted_wait" // median wait forecast (s)
)

// Op compares a sampled metric against a threshold.
type Op string

// Comparison operators for conditions.
const (
	OpAbove Op = ">"
	OpBelow Op = "<"
)

// Condition is a threshold predicate over one resource metric.
type Condition struct {
	Resource  string
	Metric    Metric
	Op        Op
	Threshold float64
	// Sustain requires the predicate to hold for this long before firing
	// ("when the average performance has dropped below a threshold for a
	// certain period" — paper §III-B).
	Sustain time.Duration
}

// Event notifies a subscriber that a condition fired.
type Event struct {
	Time      sim.Time
	Condition Condition
	// Value is the sample that completed the sustained violation.
	Value float64
}

// Subscriber receives condition events.
type Subscriber func(Event)

// Monitor polls bundle resources on a fixed interval and notifies
// subscribers on sustained threshold crossings. Events are edge-triggered:
// after firing, a condition re-arms once the predicate turns false.
type Monitor struct {
	eng      sim.Engine
	bundle   *Bundle
	interval time.Duration
	subs     []*subscription
	stopped  bool
	tick     *sim.Event
}

type subscription struct {
	cond  Condition
	sub   Subscriber
	since sim.Time // when the predicate became true; -1 when false
	fired bool
}

// NewMonitor creates a monitor polling at the given interval.
func NewMonitor(eng sim.Engine, b *Bundle, interval time.Duration) *Monitor {
	if interval <= 0 {
		panic(fmt.Sprintf("bundle: non-positive monitor interval %v", interval))
	}
	m := &Monitor{eng: eng, bundle: b, interval: interval}
	m.schedule()
	return m
}

// Subscribe registers a condition. It returns an error for unknown resources
// or metrics so misconfigured experiments fail fast.
func (m *Monitor) Subscribe(cond Condition, sub Subscriber) error {
	if m.bundle.Resource(cond.Resource) == nil {
		return fmt.Errorf("bundle: monitor: unknown resource %q", cond.Resource)
	}
	switch cond.Metric {
	case MetricUtilization, MetricInstantUtil, MetricFreeNodes, MetricQueuedJobs, MetricPredictedWait:
	default:
		return fmt.Errorf("bundle: monitor: unknown metric %q", cond.Metric)
	}
	if cond.Op != OpAbove && cond.Op != OpBelow {
		return fmt.Errorf("bundle: monitor: unknown operator %q", cond.Op)
	}
	m.subs = append(m.subs, &subscription{cond: cond, sub: sub, since: -1})
	return nil
}

// Stop halts polling.
func (m *Monitor) Stop() {
	m.stopped = true
	if m.tick != nil {
		m.eng.Cancel(m.tick)
		m.tick = nil
	}
}

func (m *Monitor) schedule() {
	if m.stopped {
		return
	}
	m.tick = m.eng.Schedule(m.interval, func() {
		m.poll()
		m.schedule()
	})
}

func (m *Monitor) poll() {
	now := m.eng.Now()
	for _, s := range m.subs {
		r := m.bundle.Resource(s.cond.Resource)
		v, ok := m.sample(r, s.cond.Metric)
		if !ok {
			continue
		}
		violating := false
		switch s.cond.Op {
		case OpAbove:
			violating = v > s.cond.Threshold
		case OpBelow:
			violating = v < s.cond.Threshold
		}
		if !violating {
			s.since = -1
			s.fired = false
			continue
		}
		if s.since < 0 {
			s.since = now
		}
		if s.fired || now.Sub(s.since) < s.cond.Sustain {
			continue
		}
		s.fired = true
		s.sub(Event{Time: now, Condition: s.cond, Value: v})
	}
}

func (m *Monitor) sample(r *Resource, metric Metric) (float64, bool) {
	switch metric {
	case MetricUtilization:
		return r.s.Queue().Snapshot().Utilization, true
	case MetricInstantUtil:
		return r.s.Queue().Snapshot().InstantUtilization, true
	case MetricFreeNodes:
		return float64(r.s.Queue().Snapshot().FreeNodes), true
	case MetricQueuedJobs:
		return float64(r.s.Queue().Snapshot().QueuedJobs), true
	case MetricPredictedWait:
		d, ok := r.Predict(0.5, 0.95)
		return d.Seconds(), ok
	}
	return 0, false
}
