package saga

import (
	"fmt"

	"aimes/internal/batch"
	"aimes/internal/sim"
	"aimes/internal/site"
)

// batchJob implements Job for the batch adaptor.
type batchJob struct {
	id        string
	desc      Description
	resource  string
	state     State
	detail    string
	submitted sim.Time
	started   sim.Time
	ended     sim.Time
	inner     *batch.Job
	cb        StateCallback
}

func (j *batchJob) ID() string               { return j.id }
func (j *batchJob) State() State             { return j.state }
func (j *batchJob) Detail() string           { return j.detail }
func (j *batchJob) Description() Description { return j.desc }
func (j *batchJob) Resource() string         { return j.resource }
func (j *batchJob) SubmittedAt() sim.Time    { return j.submitted }
func (j *batchJob) StartedAt() sim.Time      { return j.started }
func (j *batchJob) EndedAt() sim.Time        { return j.ended }

func (j *batchJob) transition(state State, detail string) {
	j.state = state
	j.detail = detail
	if j.cb != nil {
		j.cb(j, state)
	}
}

// BatchAdaptor submits jobs to a simulated site's batch queue, converting
// core requests to whole nodes and charging the site's submission latency.
// It mirrors the role of SAGA's PBS/Slurm/GSISSH adaptors.
type BatchAdaptor struct {
	eng  sim.Engine
	site *site.Site
	seq  int
	// pendingCancel tracks jobs canceled during the submission latency
	// window, before the batch system knows about them.
	pendingCancel map[*batchJob]bool
}

// NewBatchAdaptor returns a Service submitting to the site's queue.
func NewBatchAdaptor(eng sim.Engine, s *site.Site) *BatchAdaptor {
	return &BatchAdaptor{eng: eng, site: s, pendingCancel: make(map[*batchJob]bool)}
}

var _ Service = (*BatchAdaptor)(nil)

// Resource implements Service.
func (a *BatchAdaptor) Resource() string { return a.site.Name() }

// Submit implements Service. It is safe to call from outside engine
// callbacks: the body runs under the engine's callback serialization.
func (a *BatchAdaptor) Submit(d Description, cb StateCallback) (Job, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cfg := a.site.Config()
	nodes := cfg.NodesFor(d.Cores)
	if nodes > cfg.Nodes {
		return nil, fmt.Errorf("saga: %s: %d cores (%d nodes) exceed machine size %d nodes",
			cfg.Name, d.Cores, nodes, cfg.Nodes)
	}
	var j *batchJob
	sim.Locked(a.eng, func() { j = a.submit(d, cfg, nodes, cb) })
	return j, nil
}

func (a *BatchAdaptor) submit(d Description, cfg site.Config, nodes int, cb StateCallback) *batchJob {
	a.seq++
	j := &batchJob{
		id:        fmt.Sprintf("%s.%04d", cfg.Name, a.seq),
		desc:      d,
		resource:  cfg.Name,
		state:     New,
		cb:        cb,
		submitted: a.eng.Now(),
	}
	// The submission latency models the client → resource-manager round
	// trip; the job reaches the remote queue only after it elapses.
	a.eng.Schedule(cfg.SubmitLatency, func() {
		if a.pendingCancel[j] {
			delete(a.pendingCancel, j)
			j.ended = a.eng.Now()
			j.transition(Canceled, "canceled before submission")
			return
		}
		if !a.site.Online() {
			// The resource manager is unreachable: the submission round trip
			// fails, as it would against a dead head node.
			j.ended = a.eng.Now()
			j.transition(Failed, "resource offline")
			return
		}
		inner := &batch.Job{
			ID:       j.id,
			Nodes:    nodes,
			Runtime:  d.Runtime,
			Walltime: d.Walltime,
		}
		inner.OnStart = func(*batch.Job) {
			j.started = a.eng.Now()
			j.transition(Running, "")
		}
		inner.OnEnd = func(bj *batch.Job) {
			j.ended = a.eng.Now()
			switch bj.State {
			case batch.JobCompleted:
				j.transition(Done, "")
			case batch.JobKilled:
				j.transition(Failed, "walltime")
			case batch.JobCanceled:
				j.transition(Canceled, "")
			case batch.JobFailed:
				j.transition(Failed, "resource failure")
			default:
				j.transition(Failed, fmt.Sprintf("unexpected state %v", bj.State))
			}
		}
		j.inner = inner
		if err := a.site.Queue().Submit(inner); err != nil {
			j.ended = a.eng.Now()
			j.transition(Failed, err.Error())
			return
		}
		j.transition(Pending, "")
	})
	return j
}

// Cancel implements Service. Like Submit, the body runs under the engine's
// callback serialization.
func (a *BatchAdaptor) Cancel(job Job) bool {
	j, ok := job.(*batchJob)
	if !ok {
		return false
	}
	var canceled bool
	sim.Locked(a.eng, func() {
		if j.state.Final() {
			return
		}
		if j.inner == nil {
			// Still inside the submission latency window.
			if a.pendingCancel[j] {
				return
			}
			a.pendingCancel[j] = true
			canceled = true
			return
		}
		canceled = a.site.Queue().Cancel(j.inner)
	})
	return canceled
}

// localJob implements Job for the local adaptor.
type localJob struct {
	id        string
	desc      Description
	state     State
	detail    string
	submitted sim.Time
	started   sim.Time
	ended     sim.Time
	cb        StateCallback
	endEvent  *sim.Event
	startEv   *sim.Event
}

func (j *localJob) ID() string               { return j.id }
func (j *localJob) State() State             { return j.state }
func (j *localJob) Detail() string           { return j.detail }
func (j *localJob) Description() Description { return j.desc }
func (j *localJob) Resource() string         { return "localhost" }
func (j *localJob) SubmittedAt() sim.Time    { return j.submitted }
func (j *localJob) StartedAt() sim.Time      { return j.started }
func (j *localJob) EndedAt() sim.Time        { return j.ended }

func (j *localJob) transition(state State, detail string) {
	j.state = state
	j.detail = detail
	if j.cb != nil {
		j.cb(j, state)
	}
}

// LocalAdaptor executes jobs immediately on a local core pool with no queue
// wait — SAGA's "fork" adaptor. Under a RealTime engine the delays are real,
// which is how the examples run workloads on the user's machine.
type LocalAdaptor struct {
	eng         sim.Engine
	cores       int
	free        int
	seq         int
	backlog     []*localJob
	dispatching bool
	redispatch  bool
}

// NewLocalAdaptor returns a local executor with the given core count.
func NewLocalAdaptor(eng sim.Engine, cores int) *LocalAdaptor {
	if cores <= 0 {
		panic(fmt.Sprintf("saga: local adaptor with %d cores", cores))
	}
	return &LocalAdaptor{eng: eng, cores: cores, free: cores}
}

var _ Service = (*LocalAdaptor)(nil)

// Resource implements Service.
func (a *LocalAdaptor) Resource() string { return "localhost" }

// Submit implements Service. Under a RealTime engine the caller's goroutine
// races with timer callbacks (the zero-delay Pending transition can fire
// before Submit returns), so the mutable job/backlog state is only touched
// under the engine's callback serialization.
func (a *LocalAdaptor) Submit(d Description, cb StateCallback) (Job, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Cores > a.cores {
		return nil, fmt.Errorf("saga: localhost has %d cores, job wants %d", a.cores, d.Cores)
	}
	var j *localJob
	sim.Locked(a.eng, func() {
		a.seq++
		j = &localJob{
			id:        fmt.Sprintf("localhost.%04d", a.seq),
			desc:      d,
			state:     New,
			cb:        cb,
			submitted: a.eng.Now(),
		}
		// Transition to Pending on a fresh callback so the caller sees states
		// only after Submit returns.
		j.startEv = a.eng.Schedule(0, func() {
			j.startEv = nil
			j.transition(Pending, "")
			a.backlog = append(a.backlog, j)
			a.dispatch()
		})
	})
	return j, nil
}

// Cancel implements Service. The body runs under the engine's callback
// serialization for the same reason as Submit's.
func (a *LocalAdaptor) Cancel(job Job) bool {
	j, ok := job.(*localJob)
	if !ok {
		return false
	}
	var canceled bool
	sim.Locked(a.eng, func() {
		if j.state.Final() {
			return
		}
		if j.startEv != nil {
			a.eng.Cancel(j.startEv)
			j.startEv = nil
		}
		if j.endEvent != nil {
			a.eng.Cancel(j.endEvent)
			j.endEvent = nil
			a.free += j.desc.Cores
		}
		for i, b := range a.backlog {
			if b == j {
				a.backlog = append(a.backlog[:i], a.backlog[i+1:]...)
				break
			}
		}
		j.ended = a.eng.Now()
		j.transition(Canceled, "")
		a.dispatch()
		canceled = true
	})
	return canceled
}

// dispatch starts backlogged jobs that fit the free cores. Reentrant calls
// from callbacks collapse into a rescan by the outermost invocation.
func (a *LocalAdaptor) dispatch() {
	if a.dispatching {
		a.redispatch = true
		return
	}
	a.dispatching = true
	defer func() { a.dispatching = false }()
	for {
		a.redispatch = false
		a.dispatchOnce()
		if !a.redispatch {
			return
		}
	}
}

func (a *LocalAdaptor) dispatchOnce() {
	pending := a.backlog
	a.backlog = nil
	var rest []*localJob
	for _, j := range pending {
		if j.state != Pending {
			continue // canceled during this scan
		}
		if j.desc.Cores > a.free {
			rest = append(rest, j)
			continue
		}
		a.free -= j.desc.Cores
		j.started = a.eng.Now()
		j.transition(Running, "")
		hold := j.desc.Runtime
		final := Done
		detail := ""
		if j.desc.Runtime > j.desc.Walltime {
			hold = j.desc.Walltime
			final = Failed
			detail = "walltime"
		}
		job := j
		j.endEvent = a.eng.Schedule(hold, func() {
			job.endEvent = nil
			a.free += job.desc.Cores
			job.ended = a.eng.Now()
			job.transition(final, detail)
			a.dispatch()
		})
	}
	a.backlog = append(rest, a.backlog...)
}
