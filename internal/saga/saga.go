// Package saga is the interoperability layer of the middleware, modeled on
// RADICAL-SAGA (the reference implementation of the OGF SAGA standard): a
// uniform job-submission API with per-resource adaptors. The pilot system
// submits pilot jobs through this layer without knowing whether the target is
// a simulated PBS/Slurm machine, a stochastic queue model, or an in-process
// local executor.
package saga

import (
	"fmt"
	"time"

	"aimes/internal/sim"
)

// State enumerates SAGA job states.
type State int

// SAGA job states.
const (
	New      State = iota // constructed, not yet accepted
	Pending               // accepted by the resource manager, queued
	Running               // executing on the resource
	Done                  // completed normally
	Canceled              // canceled by the client
	Failed                // terminated abnormally (includes walltime kills)
)

var stateNames = map[State]string{
	New:      "NEW",
	Pending:  "PENDING",
	Running:  "RUNNING",
	Done:     "DONE",
	Canceled: "CANCELED",
	Failed:   "FAILED",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Final reports whether the state is terminal.
func (s State) Final() bool { return s == Done || s == Canceled || s == Failed }

// Description is a SAGA-style job description. Cores are converted to whole
// nodes by resource adaptors according to site geometry.
type Description struct {
	// Executable names the payload (informational in simulation).
	Executable string
	// Arguments are passed to the executable (informational).
	Arguments []string
	// Cores is the total core request.
	Cores int
	// Walltime is the requested (and enforced) time limit.
	Walltime time.Duration
	// Runtime is the payload's actual compute duration; for pilot agents it
	// exceeds Walltime, meaning "run until killed or canceled".
	Runtime time.Duration
	// Project is the allocation to charge (informational).
	Project string
}

// Validate reports a descriptive error for malformed descriptions.
func (d Description) Validate() error {
	if d.Cores <= 0 {
		return fmt.Errorf("saga: description requests %d cores", d.Cores)
	}
	if d.Walltime <= 0 {
		return fmt.Errorf("saga: description requests walltime %v", d.Walltime)
	}
	if d.Runtime < 0 {
		return fmt.Errorf("saga: description has negative runtime %v", d.Runtime)
	}
	return nil
}

// Job is a submitted job handle.
type Job interface {
	// ID is unique within the service.
	ID() string
	// State returns the current state.
	State() State
	// Detail explains terminal states (e.g. "walltime").
	Detail() string
	// Description returns the submitted description.
	Description() Description
	// Resource names the service the job went to.
	Resource() string
	// SubmittedAt/StartedAt/EndedAt return lifecycle timestamps (zero until
	// reached).
	SubmittedAt() sim.Time
	StartedAt() sim.Time
	EndedAt() sim.Time
}

// StateCallback observes job state transitions. Callbacks fire on engine
// callbacks, in transition order.
type StateCallback func(job Job, state State)

// Service submits jobs to one resource.
type Service interface {
	// Resource names the target resource.
	Resource() string
	// Submit accepts a job for execution. The callback (may be nil) fires on
	// every subsequent state change, including the synchronous transition to
	// Pending. Submit returns an error for invalid or unsatisfiable
	// descriptions.
	Submit(d Description, cb StateCallback) (Job, error)
	// Cancel terminates a job. It reports false for unknown or already
	// terminal jobs.
	Cancel(j Job) bool
}

// Session is a registry of services, the entry point mirroring a SAGA
// session: one session, many resource endpoints.
type Session struct {
	services map[string]Service
	order    []string
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{services: make(map[string]Service)}
}

// Register adds a service. It panics on duplicate resource names, which
// indicate misconfiguration.
func (s *Session) Register(svc Service) {
	name := svc.Resource()
	if _, dup := s.services[name]; dup {
		panic(fmt.Sprintf("saga: duplicate service %q", name))
	}
	s.services[name] = svc
	s.order = append(s.order, name)
}

// Service returns the service for a resource, or an error naming the known
// resources.
func (s *Session) Service(resource string) (Service, error) {
	if svc, ok := s.services[resource]; ok {
		return svc, nil
	}
	return nil, fmt.Errorf("saga: unknown resource %q (known: %v)", resource, s.order)
}

// Resources returns registered resource names in registration order.
func (s *Session) Resources() []string {
	cp := make([]string, len(s.order))
	copy(cp, s.order)
	return cp
}
