package saga

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aimes/internal/sim"
)

// TestRealTimeLocalAdaptorRace is the regression test for the data race
// between LocalAdaptor.Submit (running on the caller's goroutine) and the
// RealTime engine's timer callbacks (which nil j.startEv and mutate the
// backlog). Run with -race: many goroutines submit short jobs concurrently
// while others cancel, so submissions, cancellations and the zero-delay
// Pending/dispatch callbacks interleave heavily.
func TestRealTimeLocalAdaptorRace(t *testing.T) {
	eng := sim.NewRealTime()
	a := NewLocalAdaptor(eng, 8)

	const (
		goroutines = 8
		perG       = 16
	)
	var terminal atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j, err := a.Submit(Description{
					Executable: "noop",
					Cores:      1,
					Walltime:   time.Minute,
					Runtime:    time.Duration(i%3) * time.Millisecond,
				}, func(_ Job, s State) {
					if s.Final() {
						terminal.Add(1)
					}
				})
				if err != nil {
					t.Error(err)
					return
				}
				// Interleave cancels with in-flight zero-delay callbacks:
				// some land before the Pending transition, some after the
				// job already finished.
				if i%4 == g%4 {
					a.Cancel(j)
				}
			}
		}(g)
	}
	wg.Wait()
	eng.Wait()

	if got, want := terminal.Load(), int64(goroutines*perG); got != want {
		t.Fatalf("terminal callbacks = %d, want %d (every job must end exactly once)", got, want)
	}
}

// TestRealTimeSyncReentrant verifies that Sync'd entry points may be called
// from inside engine callbacks without deadlocking — the pattern adaptors
// hit when a state callback submits a follow-up job.
func TestRealTimeSyncReentrant(t *testing.T) {
	eng := sim.NewRealTime()
	a := NewLocalAdaptor(eng, 2)

	done := make(chan struct{})
	_, err := a.Submit(Description{
		Executable: "first", Cores: 1, Walltime: time.Minute, Runtime: time.Millisecond,
	}, func(_ Job, s State) {
		if s != Done {
			return
		}
		// Submit from within a callback: Sync must run inline.
		_, err := a.Submit(Description{
			Executable: "second", Cores: 1, Walltime: time.Minute, Runtime: time.Millisecond,
		}, func(_ Job, s State) {
			if s == Done {
				close(done)
			}
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("chained submission did not complete (Sync deadlock?)")
	}
}
