package saga

import (
	"testing"
	"time"

	"aimes/internal/batch"
	"aimes/internal/sim"
	"aimes/internal/site"
)

func testSite(t *testing.T, eng sim.Engine) *site.Site {
	t.Helper()
	cfg := site.Config{
		Name: "stampede", Nodes: 64, CoresPerNode: 16, Architecture: "beowulf",
		WaitModel: batch.WaitModel{
			MedianWait: 5 * time.Minute, Sigma: 0.8, WidthFactor: 1,
			MinWait: 10 * time.Second,
		},
		SubmitLatency: 2 * time.Second,
		BandwidthMBps: 10, NetLatency: 100 * time.Millisecond,
	}
	s, err := site.New(eng, cfg, sim.NewRNG(1).Child("site"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pilotDesc(cores int, wall time.Duration) Description {
	return Description{
		Executable: "pilot-agent",
		Cores:      cores,
		Walltime:   wall,
		Runtime:    wall + time.Hour, // runs until killed or canceled
	}
}

func TestBatchAdaptorLifecycle(t *testing.T) {
	eng := sim.NewSim()
	a := NewBatchAdaptor(eng, testSite(t, eng))
	var states []State
	job, err := a.Submit(Description{
		Executable: "task", Cores: 16, Walltime: time.Hour, Runtime: 30 * time.Minute,
	}, func(_ Job, s State) { states = append(states, s) })
	if err != nil {
		t.Fatal(err)
	}
	if job.State() != New {
		t.Fatalf("state before submission latency = %v, want NEW", job.State())
	}
	eng.Run()
	want := []State{Pending, Running, Done}
	if len(states) != len(want) {
		t.Fatalf("states %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states %v, want %v", states, want)
		}
	}
	if job.StartedAt().Sub(job.SubmittedAt()) < 2*time.Second {
		t.Fatal("submission latency not applied")
	}
	if job.EndedAt().Sub(job.StartedAt()) != 30*time.Minute {
		t.Fatalf("runtime %v, want 30m", job.EndedAt().Sub(job.StartedAt()))
	}
}

func TestBatchAdaptorWalltimeKill(t *testing.T) {
	eng := sim.NewSim()
	a := NewBatchAdaptor(eng, testSite(t, eng))
	job, err := a.Submit(pilotDesc(16, 30*time.Minute), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if job.State() != Failed || job.Detail() != "walltime" {
		t.Fatalf("state %v detail %q, want FAILED walltime", job.State(), job.Detail())
	}
}

func TestBatchAdaptorRejects(t *testing.T) {
	eng := sim.NewSim()
	a := NewBatchAdaptor(eng, testSite(t, eng))
	if _, err := a.Submit(Description{Cores: 0, Walltime: time.Hour}, nil); err == nil {
		t.Fatal("zero cores accepted")
	}
	// 64 nodes × 16 cores = 1024 max.
	if _, err := a.Submit(pilotDesc(2048, time.Hour), nil); err == nil {
		t.Fatal("oversized request accepted")
	}
}

func TestBatchAdaptorCoreToNodeRounding(t *testing.T) {
	eng := sim.NewSim()
	s := testSite(t, eng)
	a := NewBatchAdaptor(eng, s)
	// 17 cores on 16-core nodes must round to 2 nodes: a request for
	// 1023 + 17 = 1040 cores (66 nodes) must fail on the 64-node machine.
	if _, err := a.Submit(pilotDesc(1040, time.Hour), nil); err == nil {
		t.Fatal("node rounding not applied")
	}
	if _, err := a.Submit(pilotDesc(1024, time.Hour), nil); err != nil {
		t.Fatalf("full-machine request rejected: %v", err)
	}
}

func TestBatchAdaptorCancelBeforeSubmissionCompletes(t *testing.T) {
	eng := sim.NewSim()
	a := NewBatchAdaptor(eng, testSite(t, eng))
	var final State
	job, err := a.Submit(pilotDesc(16, time.Hour), func(_ Job, s State) { final = s })
	if err != nil {
		t.Fatal(err)
	}
	if !a.Cancel(job) {
		t.Fatal("cancel during submission window failed")
	}
	if a.Cancel(job) {
		t.Fatal("double cancel succeeded")
	}
	eng.Run()
	if final != Canceled || job.State() != Canceled {
		t.Fatalf("final state %v, want CANCELED", final)
	}
	if job.StartedAt() != 0 {
		t.Fatal("canceled job started")
	}
}

func TestBatchAdaptorCancelQueuedJob(t *testing.T) {
	eng := sim.NewSim()
	a := NewBatchAdaptor(eng, testSite(t, eng))
	job, err := a.Submit(pilotDesc(16, time.Hour), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel after the submission latency but (almost surely) before the
	// sampled wait elapses.
	eng.Schedule(5*time.Second, func() {
		if !a.Cancel(job) {
			t.Error("cancel of pending job failed")
		}
	})
	eng.Run()
	if job.State() != Canceled {
		t.Fatalf("state %v, want CANCELED", job.State())
	}
}

func TestBatchAdaptorCancelRunning(t *testing.T) {
	eng := sim.NewSim()
	a := NewBatchAdaptor(eng, testSite(t, eng))
	job, err := a.Submit(pilotDesc(16, 10*time.Hour), func(j Job, s State) {
		if s == Running {
			// Cancel as soon as it starts.
			eng.Schedule(time.Minute, func() {
				if !a.Cancel(j) {
					t.Error("cancel of running job failed")
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if job.State() != Canceled {
		t.Fatalf("state %v, want CANCELED", job.State())
	}
	if job.EndedAt().Sub(job.StartedAt()) != time.Minute {
		t.Fatalf("ran for %v, want 1m", job.EndedAt().Sub(job.StartedAt()))
	}
}

func TestLocalAdaptorRunsJobs(t *testing.T) {
	eng := sim.NewSim()
	a := NewLocalAdaptor(eng, 4)
	var doneAt [3]sim.Time
	for i := 0; i < 3; i++ {
		idx := i
		_, err := a.Submit(Description{
			Executable: "sleep", Cores: 2, Walltime: time.Hour, Runtime: 10 * time.Second,
		}, func(j Job, s State) {
			if s == Done {
				doneAt[idx] = eng.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	// 4 cores, 2 per job: two run immediately, the third waits.
	if doneAt[0] != sim.Time(10*time.Second) || doneAt[1] != sim.Time(10*time.Second) {
		t.Fatalf("first two done at %v/%v, want 10s", doneAt[0], doneAt[1])
	}
	if doneAt[2] != sim.Time(20*time.Second) {
		t.Fatalf("third done at %v, want 20s", doneAt[2])
	}
}

func TestLocalAdaptorWalltime(t *testing.T) {
	eng := sim.NewSim()
	a := NewLocalAdaptor(eng, 4)
	job, err := a.Submit(Description{
		Executable: "spin", Cores: 1, Walltime: 5 * time.Second, Runtime: time.Hour,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if job.State() != Failed || job.Detail() != "walltime" {
		t.Fatalf("state %v detail %q", job.State(), job.Detail())
	}
}

func TestLocalAdaptorCancel(t *testing.T) {
	eng := sim.NewSim()
	a := NewLocalAdaptor(eng, 1)
	running, _ := a.Submit(Description{Cores: 1, Walltime: time.Hour, Runtime: time.Hour}, nil)
	queued, _ := a.Submit(Description{Cores: 1, Walltime: time.Hour, Runtime: time.Second}, nil)
	eng.Schedule(time.Minute, func() {
		if !a.Cancel(running) {
			t.Error("cancel running failed")
		}
	})
	eng.Run()
	if running.State() != Canceled {
		t.Fatalf("running job state %v", running.State())
	}
	if queued.State() != Done {
		t.Fatalf("queued job state %v, want DONE after cancel freed the core", queued.State())
	}
	if queued.StartedAt() != sim.Time(time.Minute) {
		t.Fatalf("queued started at %v, want 1m", queued.StartedAt())
	}
}

func TestLocalAdaptorRejects(t *testing.T) {
	eng := sim.NewSim()
	a := NewLocalAdaptor(eng, 2)
	if _, err := a.Submit(Description{Cores: 4, Walltime: time.Hour, Runtime: time.Second}, nil); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestSessionRegistry(t *testing.T) {
	eng := sim.NewSim()
	sess := NewSession()
	local := NewLocalAdaptor(eng, 2)
	sess.Register(local)
	got, err := sess.Service("localhost")
	if err != nil || got != local {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := sess.Service("nope"); err == nil {
		t.Fatal("unknown resource lookup succeeded")
	}
	rs := sess.Resources()
	if len(rs) != 1 || rs[0] != "localhost" {
		t.Fatalf("resources = %v", rs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	sess.Register(NewLocalAdaptor(eng, 2))
}

func TestStateStrings(t *testing.T) {
	if Done.String() != "DONE" || Pending.String() != "PENDING" {
		t.Fatal("state names wrong")
	}
	if !Failed.Final() || Running.Final() || New.Final() {
		t.Fatal("Final() wrong")
	}
	if State(42).String() != "State(42)" {
		t.Fatal("unknown state formatting wrong")
	}
}

func TestRealTimeLocalAdaptor(t *testing.T) {
	// The same adaptor code must work on the wall-clock engine.
	eng := sim.NewRealTime()
	a := NewLocalAdaptor(eng, 2)
	done := make(chan struct{})
	_, err := a.Submit(Description{
		Executable: "sleep", Cores: 1, Walltime: time.Minute, Runtime: 5 * time.Millisecond,
	}, func(_ Job, s State) {
		if s == Done {
			close(done)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("job did not complete in real time")
	}
}
