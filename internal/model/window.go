package model

// Window sizes shard k's admission window from the model's fitted per-job
// event demand: admit as many jobs as fit in roughly two pump batches, so
// one batch of progress always covers the admitted set with headroom. This
// is the predictive form of the old drained-cost heuristic — that one
// divided cumulative completed jobs × batch by cumulative events fired;
// this one uses the same ratio fitted as an EWMA, so it tracks the current
// workload instead of the lifetime average. At the cold-start seed
// (EventsPerJob ≥ batch) the target collapses below the floor, matching the
// old cold behavior.
//
// batch is the shard's pump batch size, present the number of jobs the
// window could currently cover (running + queued); the result is clamped to
// [floor, cap] and never exceeds present (no point opening a window wider
// than the work available).
func (m *CostModel) Window(k, batch, floor, cap, present int) int {
	epj := m.EventsPerJob(k)
	target := int(2 * float64(batch) / epj)
	if present > 0 && target > present {
		target = present
	}
	if target > cap {
		target = cap
	}
	if target < floor {
		target = floor
	}
	return target
}
