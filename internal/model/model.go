// Package model is the analytical twin of the sharded scheduler: a
// per-shard cost model that predicts, from a job's expected demand and the
// shard's live backlog, how long the job will take to complete there — so
// placement, work stealing, and admission-window sizing can reason about
// execution instead of only reacting to it.
//
// The model follows the closed-form cost vocabulary of pilot systems (P*: A
// Model of Pilot-Abstractions): a job's predicted completion decomposes into
// the pilot queue wait, the backlog drain ahead of it, and its own service
// time at the shard's effective drain rate. Every parameter is fitted online
// from completed-job observations — an exponentially weighted moving average
// per shard — and seeded from static per-backend defaults, so a shard with
// zero completions is still rankable against its warmed-up peers.
//
// All quantities live in virtual time (the simulation's clock), which makes
// the twin backend-agnostic: a local shard and a worker shard running the
// same trajectory fit the same parameters. Fidelity against the simulator is
// enforced in CI (cmd/model-check, TestModelFidelity) via the committed
// MODEL_baseline.json threshold, so the twin cannot silently drift from the
// scheduler it mirrors.
package model

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Config parameterizes New.
type Config struct {
	// Shards is the shard count the model covers (at least 1).
	Shards int
	// Backend tags the seed defaults: "local" or "worker" (see DefaultSeed).
	Backend string
	// Alpha is the EWMA gain in (0, 1]; 0 selects DefaultAlpha.
	Alpha float64
	// Seed overrides the cold-start fit; the zero value selects
	// DefaultSeed(Backend).
	Seed Seed
}

// DefaultAlpha is the EWMA gain: each observation contributes a quarter of
// the new estimate, so the fit follows workload shifts within a handful of
// completions without whipsawing on a single outlier.
const DefaultAlpha = 0.25

// minCost floors job demand (core-seconds) so zero-cost descriptors cannot
// produce zero service times or division blowups.
const minCost = 1e-3

// fit is one shard's parameter set. Writers (Observe) for a given shard run
// under that shard's engine serialization; readers are lock-free atomic
// loads from any goroutine, so placement pre-checks never contend on a lock.
type fit struct {
	n      atomic.Int64  // completed-job observations
	rate   atomic.Uint64 // effective drain rate, core-seconds per virtual second (Float64bits)
	wait   atomic.Uint64 // queue wait before first activation, virtual seconds
	events atomic.Uint64 // engine events retired per completed job
	cost   atomic.Uint64 // mean observed job demand, core-seconds
	relErr atomic.Uint64 // EWMA of |predicted-observed|/observed per job
}

func (f *fit) load(a *atomic.Uint64) float64     { return math.Float64frombits(a.Load()) }
func (f *fit) store(a *atomic.Uint64, v float64) { a.Store(math.Float64bits(v)) }

// ewma folds one observation into an estimate.
func ewma(old, obs, alpha float64) float64 { return (1-alpha)*old + alpha*obs }

// CostModel is the analytical twin: per-shard EWMA fits plus the prediction
// arithmetic. Observe for one shard must be externally serialized (the
// environment calls it under the shard's engine serialization); everything
// else is safe for concurrent lock-free use.
type CostModel struct {
	fits  []fit
	alpha float64
	seed  Seed
}

// New builds a model over cfg.Shards shards, every fit at the cold-start
// seed.
func New(cfg Config) *CostModel {
	if cfg.Shards < 1 {
		panic(fmt.Sprintf("model: New with %d shards: need at least one", cfg.Shards))
	}
	alpha := cfg.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	seed := cfg.Seed
	if seed == (Seed{}) {
		seed = DefaultSeed(cfg.Backend)
	}
	m := &CostModel{fits: make([]fit, cfg.Shards), alpha: alpha, seed: seed}
	for k := range m.fits {
		f := &m.fits[k]
		f.store(&f.rate, seed.Rate)
		f.store(&f.wait, seed.Wait)
		f.store(&f.events, seed.EventsPerJob)
		f.store(&f.cost, seed.Cost)
	}
	return m
}

// Shards reports the shard count the model covers.
func (m *CostModel) Shards() int { return len(m.fits) }

// Observation is one completed job's measured outcome, fed back into the
// shard's fit. All times are virtual seconds.
type Observation struct {
	// Shard is the shard the job completed on.
	Shard int
	// Cost is the job's expected demand in core-seconds (Σ duration × cores
	// over the workload) — the same a-priori signal placement reserved.
	Cost float64
	// Wait is the observed queue wait (Tw: enactment to first pilot
	// activation).
	Wait float64
	// TTC is the observed time-to-completion (enactment start to last unit
	// terminal). Wait is contained in it.
	TTC float64
	// Events is how many engine events the shard fired since the last
	// completion that saw the counter move — the event-demand signal
	// feeding admission-window sizing. Shards fire events in batches, so
	// several jobs can complete before the counter moves: EventsJobs says
	// how many completions the delta covers (minimum 1), and the fit folds
	// the per-job value once per covered job. 0 skips the events fit.
	Events int64
	// EventsJobs is the number of completions the Events delta spans.
	EventsJobs int64
	// Predicted is the completion time the model predicted when the job was
	// enacted (0 when no prediction was recorded); it feeds the
	// prediction-error gauge, never the fits.
	Predicted float64
}

// Observe folds one completed job into its shard's fit. Calls for the same
// shard must be serialized by the caller; calls for different shards may
// race freely (fits are independent).
func (m *CostModel) Observe(o Observation) {
	if o.Shard < 0 || o.Shard >= len(m.fits) || o.TTC <= 0 {
		return
	}
	f := &m.fits[o.Shard]
	cost := o.Cost
	if cost < minCost {
		cost = minCost
	}
	if o.Wait >= 0 && o.Wait <= o.TTC {
		f.store(&f.wait, ewma(f.load(&f.wait), o.Wait, m.alpha))
		if exec := o.TTC - o.Wait; exec > 0 {
			f.store(&f.rate, ewma(f.load(&f.rate), cost/exec, m.alpha))
		}
	}
	if o.Events > 0 {
		jobs := o.EventsJobs
		if jobs < 1 {
			jobs = 1
		}
		// Fold the per-job value once per covered completion:
		// 1-(1-α)^jobs is exactly jobs consecutive EWMA steps.
		a := 1 - math.Pow(1-m.alpha, float64(jobs))
		f.store(&f.events, ewma(f.load(&f.events), float64(o.Events)/float64(jobs), a))
	}
	f.store(&f.cost, ewma(f.load(&f.cost), cost, m.alpha))
	if o.Predicted > 0 {
		rel := math.Abs(o.Predicted-o.TTC) / o.TTC
		if f.n.Load() == 0 {
			f.store(&f.relErr, rel)
		} else {
			f.store(&f.relErr, ewma(f.load(&f.relErr), rel, m.alpha))
		}
	}
	f.n.Add(1)
}

// Prediction is one placement's predicted completion, decomposed into the
// terms of the pilot cost vocabulary. All values are virtual seconds.
type Prediction struct {
	// Wait is the fitted queue wait before the job's first pilot activates.
	Wait float64
	// Queue is the drain time of the backlog ahead of the job (the pending
	// work the shard has already accepted).
	Queue float64
	// Service is the job's own demand at the shard's effective drain rate.
	Service float64
	// Total is Wait + Queue + Service.
	Total float64
}

// Predict returns the predicted completion of placing a job of the given
// demand (core-seconds) on shard k with the given backlog (pending
// core-seconds already accepted, excluding this job). Out-of-range shards
// predict +Inf, so they always rank last.
func (m *CostModel) Predict(k int, cost, pending float64) Prediction {
	if k < 0 || k >= len(m.fits) {
		return Prediction{Wait: math.Inf(1), Total: math.Inf(1)}
	}
	f := &m.fits[k]
	rate := f.load(&f.rate)
	if rate < minCost {
		rate = minCost
	}
	if cost < minCost {
		cost = minCost
	}
	if pending < 0 {
		pending = 0
	}
	p := Prediction{
		Wait:    f.load(&f.wait),
		Queue:   pending / rate,
		Service: cost / rate,
	}
	p.Total = p.Wait + p.Queue + p.Service
	return p
}

// MigrationGain returns the predicted benefit of moving a queued job of the
// given demand from origin to dest: predicted completion if it stays (its
// cost is already inside originPending, so the stay term is the origin's
// full backlog drain) minus predicted completion if it moves (the dest
// backlog plus the job, plus the seeded handoff delay). Positive means
// moving pays; the caller decides how much gain justifies a handoff
// (ShouldMigrate applies the standard self-limiting margin).
func (m *CostModel) MigrationGain(origin, dest int, cost, originPending, destPending float64) float64 {
	stay := m.Predict(origin, 0, originPending)
	move := m.Predict(dest, cost, destPending)
	return (stay.Wait + stay.Queue) - (move.Total + m.seed.MigrationDelay)
}

// ShouldMigrate reports whether the model predicts enough benefit to pay for
// handing a queued job of the given demand from origin to dest: the gain
// must cover at least one service time of the job on the destination, so the
// destination remains strictly better off even after receiving it. With
// identical fits on both shards this reduces exactly to the classic
// pending-cost rule (dest+cost <= origin-cost) — the reactive scheduler is
// the model's degenerate case — and once the fits diverge, a faster shard
// is allowed to absorb more than a slower one. originPending includes the
// job itself (its cost is reserved on its current shard); destPending does
// not.
func (m *CostModel) ShouldMigrate(origin, dest int, cost, originPending, destPending float64) bool {
	if cost < minCost {
		cost = minCost
	}
	return m.MigrationGain(origin, dest, cost, originPending, destPending) >= m.Predict(dest, cost, 0).Service
}

// EventsPerJob returns shard k's fitted engine-event demand per job — how
// many events the shard retires between consecutive completions.
func (m *CostModel) EventsPerJob(k int) float64 {
	if k < 0 || k >= len(m.fits) {
		return m.seed.EventsPerJob
	}
	f := &m.fits[k]
	if e := f.load(&f.events); e >= 1 {
		return e
	}
	return 1
}

// RelError returns shard k's EWMA of relative prediction error
// (|predicted − observed| / observed per completed job), or 0 before any
// prediction has been scored.
func (m *CostModel) RelError(k int) float64 {
	if k < 0 || k >= len(m.fits) {
		return 0
	}
	f := &m.fits[k]
	return f.load(&f.relErr)
}

// Observations returns how many completed jobs shard k's fit has absorbed.
func (m *CostModel) Observations(k int) int64 {
	if k < 0 || k >= len(m.fits) {
		return 0
	}
	return m.fits[k].n.Load()
}

// TypicalCost returns shard k's fitted mean job demand (core-seconds) — the
// seed value until the shard completes a job. Monitoring uses it to render a
// comparable "predicted cost of the next typical job" per shard.
func (m *CostModel) TypicalCost(k int) float64 {
	if k < 0 || k >= len(m.fits) {
		return m.seed.Cost
	}
	return m.fits[k].load(&m.fits[k].cost)
}

// ShardModel is one shard's fit snapshot (see Snapshot).
type ShardModel struct {
	Shard        int
	Observations int64
	Rate         float64 // core-seconds per virtual second
	Wait         float64 // virtual seconds
	EventsPerJob float64
	Cost         float64 // mean observed demand, core-seconds
	RelError     float64
}

// Snapshot returns every shard's current fit.
func (m *CostModel) Snapshot() []ShardModel {
	out := make([]ShardModel, len(m.fits))
	for k := range m.fits {
		f := &m.fits[k]
		out[k] = ShardModel{
			Shard:        k,
			Observations: f.n.Load(),
			Rate:         f.load(&f.rate),
			Wait:         f.load(&f.wait),
			EventsPerJob: f.load(&f.events),
			Cost:         f.load(&f.cost),
			RelError:     f.load(&f.relErr),
		}
	}
	return out
}
