package model

// Seed is the static cold-start fit applied to every shard before it has
// completed a job. The values are deliberately conservative: they make a
// cold shard rankable against warm peers (it competes on backlog, not on an
// invented speed advantage) and they reproduce the pre-model scheduler's
// behavior exactly until real observations arrive — the reactive heuristics
// are the model's degenerate case.
type Seed struct {
	// Rate is the assumed effective drain rate in core-seconds of demand
	// retired per virtual second. 1.0 means backlog drains in real (virtual)
	// time: with every shard at the seed, predicted completions rank shards
	// purely by pending cost, i.e. least-loaded placement.
	Rate float64
	// Wait is the assumed pilot queue wait in virtual seconds. The default
	// mirrors the simulator's 30-minute median site wait.
	Wait float64
	// EventsPerJob is the assumed engine events retired per completed job.
	// Seeded at the backend's pump batch size, so a cold shard's window
	// target (2×batch ÷ events-per-job) is 2 — below the floor, the same
	// posture the drained-cost heuristic had before any job finished.
	EventsPerJob float64
	// Cost is the assumed demand of a typical job in core-seconds (the
	// 64-unit × 15-minute reference workload at 1 core per unit).
	Cost float64
	// MigrationDelay is the assumed virtual-time cost of a queued-job
	// handoff. The two-phase handoff re-enacts the descriptor without
	// rewinding virtual time, so the default is 0 — the migration gate's
	// margin comes from the destination service time, not from here.
	MigrationDelay float64
}

// Backend tags accepted by DefaultSeed, mirroring the environment kinds.
const (
	BackendLocal  = "local"
	BackendWorker = "worker"
)

// DefaultSeed returns the cold-start fit for a backend kind. Worker shards
// pump larger step batches (512 vs the local 64), so their per-job event
// demand is seeded higher; everything else is backend-independent.
func DefaultSeed(backend string) Seed {
	s := Seed{
		Rate:         1.0,
		Wait:         1800,
		EventsPerJob: 64,
		Cost:         64 * 15 * 60,
	}
	if backend == BackendWorker {
		s.EventsPerJob = 512
	}
	return s
}
