package model

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Sample is one job's predicted-vs-simulated completion pair, collected by
// the fidelity battery (internal/modelcheck) from a deterministic replay.
// Times are virtual seconds.
type Sample struct {
	Workload  string  `json:"workload"`
	Job       int     `json:"job"`
	Shard     int     `json:"shard"`
	Predicted float64 `json:"predicted"`
	Observed  float64 `json:"observed"`
}

// RelError returns the sample's relative prediction error
// |predicted − observed| / observed, or +Inf for a non-positive observation.
func (s Sample) RelError() float64 {
	if s.Observed <= 0 {
		return math.Inf(1)
	}
	return math.Abs(s.Predicted-s.Observed) / s.Observed
}

// Fidelity aggregates a battery of samples into the scores the CI gate
// compares against the committed baseline.
type Fidelity struct {
	Samples      int     `json:"samples"`
	MeanRelError float64 `json:"mean_rel_error"`
	MaxRelError  float64 `json:"max_rel_error"`
}

// Score aggregates samples; it returns a zero Fidelity for an empty batch.
func Score(samples []Sample) Fidelity {
	f := Fidelity{Samples: len(samples)}
	if len(samples) == 0 {
		return f
	}
	var sum float64
	for _, s := range samples {
		rel := s.RelError()
		sum += rel
		if rel > f.MaxRelError {
			f.MaxRelError = rel
		}
	}
	f.MeanRelError = sum / float64(len(samples))
	return f
}

// Baseline is the committed fidelity contract (MODEL_baseline.json): the
// error the twin is allowed before CI fails. The recorded fields document
// what the thresholds were derived from.
type Baseline struct {
	// MaxMeanRelError is the gate: the battery's mean relative prediction
	// error must not exceed it.
	MaxMeanRelError float64 `json:"max_mean_rel_error"`
	// MaxWorstRelError bounds the single worst job (0 disables the bound).
	MaxWorstRelError float64 `json:"max_worst_rel_error,omitempty"`
	// MinSamples guards against the battery silently shrinking.
	MinSamples int `json:"min_samples"`
	// Recorded is the Fidelity measured when the baseline was committed.
	Recorded Fidelity `json:"recorded"`
}

// LoadBaseline reads a committed baseline file.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("parse %s: %w", path, err)
	}
	if b.MaxMeanRelError <= 0 {
		return b, fmt.Errorf("%s: max_mean_rel_error must be positive", path)
	}
	return b, nil
}

// Check compares a fresh battery score against the baseline and returns one
// error per violated bound.
func (b Baseline) Check(f Fidelity) []error {
	var errs []error
	if f.Samples < b.MinSamples {
		errs = append(errs, fmt.Errorf("fidelity battery produced %d samples, baseline requires >= %d", f.Samples, b.MinSamples))
	}
	if f.MeanRelError > b.MaxMeanRelError {
		errs = append(errs, fmt.Errorf("mean relative prediction error %.4f exceeds committed threshold %.4f", f.MeanRelError, b.MaxMeanRelError))
	}
	if b.MaxWorstRelError > 0 && f.MaxRelError > b.MaxWorstRelError {
		errs = append(errs, fmt.Errorf("worst-job relative prediction error %.4f exceeds committed threshold %.4f", f.MaxRelError, b.MaxWorstRelError))
	}
	return errs
}

// UpdateBaseline rewrites the baseline file from a fresh score, keeping the
// gate thresholds a fixed margin above the measured error so routine noise
// passes and real drift fails: mean threshold = 1.5× measured (floor 0.05),
// worst-job threshold = 2× measured (floor 0.10).
func UpdateBaseline(path string, f Fidelity) (Baseline, error) {
	b := Baseline{
		MaxMeanRelError:  math.Max(0.05, 1.5*f.MeanRelError),
		MaxWorstRelError: math.Max(0.10, 2*f.MaxRelError),
		MinSamples:       f.Samples,
		Recorded:         f,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return b, err
	}
	return b, os.WriteFile(path, append(data, '\n'), 0o644)
}
