package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestColdShardIsRankable(t *testing.T) {
	m := New(Config{Shards: 3, Backend: BackendLocal})
	// Warm shards 0 and 1 with completions; shard 2 stays cold.
	for i := 0; i < 20; i++ {
		m.Observe(Observation{Shard: 0, Cost: 900, Wait: 1800, TTC: 2700})
		m.Observe(Observation{Shard: 1, Cost: 900, Wait: 1800, TTC: 2700})
	}
	if m.Observations(2) != 0 {
		t.Fatalf("shard 2 should be cold, has %d observations", m.Observations(2))
	}
	// The cold shard must still produce a finite, comparable prediction.
	p := m.Predict(2, 900, 0)
	if math.IsInf(p.Total, 0) || math.IsNaN(p.Total) || p.Total <= 0 {
		t.Fatalf("cold shard prediction not rankable: %+v", p)
	}
	// With warm shards carrying backlog, the empty cold shard must win.
	warm := m.Predict(0, 900, 50000)
	if p.Total >= warm.Total {
		t.Fatalf("empty cold shard (%.1f) should beat backlogged warm shard (%.1f)", p.Total, warm.Total)
	}
}

func TestUniformFitsRankLikeLeastLoaded(t *testing.T) {
	// With every shard at the same fit, predicted completion must order
	// shards exactly by pending cost: least-loaded is the degenerate case.
	m := New(Config{Shards: 4, Backend: BackendLocal})
	pendings := []float64{4000, 1000, 3000, 2000}
	best, bestTotal := -1, math.Inf(1)
	for k, pend := range pendings {
		if tot := m.Predict(k, 900, pend).Total; tot < bestTotal {
			best, bestTotal = k, tot
		}
	}
	if best != 1 {
		t.Fatalf("predictive ranking picked shard %d, least-loaded picks 1", best)
	}
}

func TestMigrationGateDegeneratesToPendingRule(t *testing.T) {
	m := New(Config{Shards: 2, Backend: BackendLocal})
	cases := []struct {
		origin, dest, cost float64
		want               bool
	}{
		// dest + cost <= origin - cost: migrate.
		{10000, 1000, 900, true},
		{10000, 8200, 900, true}, // 8200+900 = 9100 == 10000-900: boundary migrates
		{10000, 8300, 900, false},
		{2000, 1900, 900, false}, // near-balanced: moving would just ping-pong
		{1800, 0, 900, true},     // empty dest: exactly at the boundary (0+900 == 1800-900)
	}
	for i, c := range cases {
		if got := m.ShouldMigrate(0, 1, c.cost, c.origin, c.dest); got != c.want {
			t.Errorf("case %d: ShouldMigrate(origin=%.0f dest=%.0f cost=%.0f) = %v, want %v",
				i, c.origin, c.dest, c.cost, got, c.want)
		}
	}
}

func TestMigrationGateFavorsFasterShard(t *testing.T) {
	m := New(Config{Shards: 2, Backend: BackendLocal})
	// Teach the model that shard 1 drains 4x faster than shard 0.
	for i := 0; i < 50; i++ {
		m.Observe(Observation{Shard: 0, Cost: 900, Wait: 0, TTC: 900})  // rate 1
		m.Observe(Observation{Shard: 1, Cost: 3600, Wait: 0, TTC: 900}) // rate 4
	}
	// Equal pendings would never migrate under the pending rule, but the
	// fast shard clears the backlog (and the job) so much sooner that the
	// model approves the move.
	if !m.ShouldMigrate(0, 1, 900, 4000, 4000) {
		t.Fatal("model should migrate toward a 4x-faster shard at equal pending cost")
	}
	// And never in the other direction.
	if m.ShouldMigrate(1, 0, 900, 4000, 4000) {
		t.Fatal("model migrated toward the slower shard")
	}
}

func TestHeavyTailedFitConverges(t *testing.T) {
	// Adversarial input: Pareto-like costs spanning four orders of
	// magnitude at a fixed true drain rate. The fitted rate must stay
	// finite, positive, and within a small factor of the truth.
	m := New(Config{Shards: 1, Backend: BackendLocal})
	rng := rand.New(rand.NewSource(7))
	const trueRate = 2.5
	for i := 0; i < 5000; i++ {
		// Pareto(alpha=1.1) scaled: mostly ~1, occasionally 10^3-10^4.
		cost := math.Pow(rng.Float64(), -1/1.1)
		wait := 10 * rng.Float64()
		noise := 0.7 + 0.6*rng.Float64() // per-job drain jitter around the true rate
		m.Observe(Observation{Shard: 0, Cost: cost, Wait: wait, TTC: wait + cost/(trueRate*noise)})
	}
	got := m.Snapshot()[0]
	if math.IsNaN(got.Rate) || math.IsInf(got.Rate, 0) || got.Rate <= 0 {
		t.Fatalf("heavy-tailed fit diverged: rate=%v", got.Rate)
	}
	if got.Rate < trueRate/1.5 || got.Rate > trueRate*1.5 {
		t.Fatalf("heavy-tailed fit off: rate=%.3f, true %.1f", got.Rate, trueRate)
	}
	if got.Wait < 0 || got.Wait > 10 {
		t.Fatalf("wait fit escaped observed range: %.3f", got.Wait)
	}
}

func TestObserveIgnoresGarbage(t *testing.T) {
	m := New(Config{Shards: 1, Backend: BackendLocal})
	before := m.Snapshot()[0]
	m.Observe(Observation{Shard: -1, Cost: 900, TTC: 900})
	m.Observe(Observation{Shard: 5, Cost: 900, TTC: 900})
	m.Observe(Observation{Shard: 0, Cost: 900, TTC: 0})
	m.Observe(Observation{Shard: 0, Cost: 900, TTC: -4})
	after := m.Snapshot()[0]
	if after != before {
		t.Fatalf("garbage observations mutated the fit: %+v -> %+v", before, after)
	}
	// A wait beyond TTC is dropped from the wait/rate fit but the
	// completion still counts toward cost and n.
	m.Observe(Observation{Shard: 0, Cost: 900, Wait: 100, TTC: 50})
	got := m.Snapshot()[0]
	if got.Observations != 1 {
		t.Fatalf("inconsistent wait should still count the completion, n=%d", got.Observations)
	}
	if got.Rate != before.Rate || got.Wait != before.Wait {
		t.Fatal("inconsistent wait leaked into the rate/wait fit")
	}
}

func TestWindowTracksEventDemand(t *testing.T) {
	m := New(Config{Shards: 1, Backend: BackendLocal})
	const batch, floor, max = 64, 4, 64
	// Cold: seed events-per-job >= batch, window pinned at the floor.
	if w := m.Window(0, batch, floor, max, 100); w != floor {
		t.Fatalf("cold window = %d, want floor %d", w, floor)
	}
	// A flood of tiny jobs (few events each) must open the window.
	for i := 0; i < 60; i++ {
		m.Observe(Observation{Shard: 0, Cost: 1, Wait: 0, TTC: 1, Events: 8})
	}
	w := m.Window(0, batch, floor, max, 100)
	if w <= floor {
		t.Fatalf("tiny-job window stuck at %d, want > floor %d", w, floor)
	}
	if w > max {
		t.Fatalf("window %d exceeds cap %d", w, max)
	}
	// Never wider than the work available.
	if got := m.Window(0, batch, floor, max, 6); got > 6 && got != floor {
		t.Fatalf("window %d wider than present jobs 6", got)
	}
}

func TestRelErrorTracksPredictions(t *testing.T) {
	m := New(Config{Shards: 1, Backend: BackendLocal})
	if m.RelError(0) != 0 {
		t.Fatalf("cold relErr = %v, want 0", m.RelError(0))
	}
	// Perfect predictions: error stays 0.
	for i := 0; i < 10; i++ {
		m.Observe(Observation{Shard: 0, Cost: 900, Wait: 0, TTC: 900, Predicted: 900})
	}
	if e := m.RelError(0); e != 0 {
		t.Fatalf("perfect predictions gave relErr %v", e)
	}
	// 50%-off predictions: EWMA converges toward 0.5.
	for i := 0; i < 50; i++ {
		m.Observe(Observation{Shard: 0, Cost: 900, Wait: 0, TTC: 1000, Predicted: 500})
	}
	if e := m.RelError(0); e < 0.4 || e > 0.6 {
		t.Fatalf("relErr = %v, want ~0.5", e)
	}
}

func TestFidelityScoreAndBaseline(t *testing.T) {
	samples := []Sample{
		{Job: 0, Predicted: 100, Observed: 100},
		{Job: 1, Predicted: 90, Observed: 100},
		{Job: 2, Predicted: 120, Observed: 100},
	}
	f := Score(samples)
	if f.Samples != 3 {
		t.Fatalf("samples = %d", f.Samples)
	}
	if math.Abs(f.MeanRelError-0.1) > 1e-12 {
		t.Fatalf("mean rel error = %v, want 0.1", f.MeanRelError)
	}
	if math.Abs(f.MaxRelError-0.2) > 1e-12 {
		t.Fatalf("max rel error = %v, want 0.2", f.MaxRelError)
	}
	b := Baseline{MaxMeanRelError: 0.15, MaxWorstRelError: 0.25, MinSamples: 3}
	if errs := b.Check(f); len(errs) != 0 {
		t.Fatalf("in-bounds score failed baseline: %v", errs)
	}
	b = Baseline{MaxMeanRelError: 0.05, MaxWorstRelError: 0.1, MinSamples: 10}
	if errs := b.Check(f); len(errs) != 3 {
		t.Fatalf("want 3 violations, got %v", errs)
	}
	if Score(nil).Samples != 0 {
		t.Fatal("empty battery should score zero samples")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := t.TempDir() + "/MODEL_baseline.json"
	f := Fidelity{Samples: 40, MeanRelError: 0.08, MaxRelError: 0.3}
	wrote, err := UpdateBaseline(path, f)
	if err != nil {
		t.Fatal(err)
	}
	read, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if read != wrote {
		t.Fatalf("round trip mismatch: wrote %+v read %+v", wrote, read)
	}
	// The freshly derived thresholds must pass the score they came from.
	if errs := read.Check(f); len(errs) != 0 {
		t.Fatalf("fresh baseline rejects its own score: %v", errs)
	}
	if _, err := LoadBaseline(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing baseline should error")
	}
}
