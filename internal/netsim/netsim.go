// Package netsim models wide-area data movement for task staging: each
// simulated resource has a WAN link of fixed capacity, concurrent transfers
// share it max-min fairly (fluid-flow model), and every transfer pays a fixed
// per-file latency. This produces the paper's Ts component: staging time that
// grows roughly linearly with the number of tasks, with concurrency limited
// by link capacity rather than by task count.
package netsim

import (
	"fmt"
	"time"

	"aimes/internal/sim"
)

// Link is a shared network link with a fixed capacity. All active transfers
// receive an equal share of the bandwidth; shares are recomputed whenever a
// transfer starts or finishes (progressive filling with a single bottleneck).
type Link struct {
	eng       sim.Engine
	name      string
	bandwidth float64 // bytes per second
	latency   time.Duration
	maxActive int // 0 = unlimited

	active     []*Transfer
	pending    []*Transfer
	lastUpdate sim.Time

	totalBytes     float64
	completedCount int
}

// NewLink creates a link. Bandwidth is in bytes/second; latency is the fixed
// per-transfer setup cost (connection establishment, metadata round trips).
func NewLink(eng sim.Engine, name string, bandwidth float64, latency time.Duration) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("netsim: link %q bandwidth %g must be positive", name, bandwidth))
	}
	if latency < 0 {
		panic(fmt.Sprintf("netsim: link %q negative latency %v", name, latency))
	}
	return &Link{
		eng:        eng,
		name:       name,
		bandwidth:  bandwidth,
		latency:    latency,
		lastUpdate: eng.Now(),
	}
}

// SetMaxConcurrent bounds the number of simultaneously flowing transfers;
// additional transfers queue FIFO. Real staging tools (GridFTP, scp fan-out)
// run a bounded stream pool; the bound also keeps fluid-model rescheduling
// cheap with thousands of files. Zero means unlimited.
func (l *Link) SetMaxConcurrent(n int) {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative concurrency bound %d", n))
	}
	l.maxActive = n
}

// SetBandwidth changes the link capacity mid-run — WAN degradation or
// recovery injected by the scenario engine. In-flight transfers are settled
// at the old rate up to now, then rescheduled at the new fair share.
func (l *Link) SetBandwidth(bandwidth float64) {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("netsim: link %q bandwidth %g must be positive", l.name, bandwidth))
	}
	if bandwidth == l.bandwidth {
		return
	}
	l.settle()
	l.bandwidth = bandwidth
	l.reschedule()
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the configured capacity in bytes/second.
func (l *Link) Bandwidth() float64 { return l.bandwidth }

// Latency returns the fixed per-transfer setup latency.
func (l *Link) Latency() time.Duration { return l.latency }

// Active reports the number of transfers currently moving bytes.
func (l *Link) Active() int { return len(l.active) }

// Pending reports the number of transfers queued behind the concurrency
// bound.
func (l *Link) Pending() int { return len(l.pending) }

// Completed reports how many transfers have finished.
func (l *Link) Completed() int { return l.completedCount }

// TotalBytes reports the cumulative payload moved over the link.
func (l *Link) TotalBytes() float64 { return l.totalBytes }

// Estimate returns the transfer time for size bytes if the link were
// otherwise idle — the "order of magnitude" estimate the paper's bundle
// query interface exposes for file transfers.
func (l *Link) Estimate(size int64) time.Duration {
	return l.latency + time.Duration(float64(size)/l.bandwidth*float64(time.Second))
}

// Transfer is one in-flight data movement.
type Transfer struct {
	link      *Link
	size      int64
	remaining float64
	started   sim.Time
	ended     sim.Time
	onDone    func()
	canceled  bool
	latEvent  *sim.Event
	doneEvent *sim.Event
}

// Size returns the transfer payload in bytes.
func (t *Transfer) Size() int64 { return t.size }

// Started returns when bytes began to flow (after latency); zero until then.
func (t *Transfer) Started() sim.Time { return t.started }

// Ended returns the completion time; zero until done.
func (t *Transfer) Ended() sim.Time { return t.ended }

// Start begins a transfer of size bytes. onDone fires when the last byte
// arrives. Zero-size transfers still pay the link latency.
func (l *Link) Start(size int64, onDone func()) *Transfer {
	if size < 0 {
		panic(fmt.Sprintf("netsim: negative transfer size %d", size))
	}
	t := &Transfer{link: l, size: size, remaining: float64(size), onDone: onDone}
	t.latEvent = l.eng.Schedule(l.latency, func() {
		t.latEvent = nil
		if l.maxActive > 0 && len(l.active) >= l.maxActive {
			l.pending = append(l.pending, t)
			return
		}
		l.admit(t)
	})
	return t
}

// admit starts moving a transfer's bytes.
func (l *Link) admit(t *Transfer) {
	l.settle()
	t.started = l.eng.Now()
	l.active = append(l.active, t)
	l.reschedule()
}

// admitPending fills freed slots from the FIFO queue.
func (l *Link) admitPending() {
	for len(l.pending) > 0 && (l.maxActive == 0 || len(l.active) < l.maxActive) {
		t := l.pending[0]
		l.pending = l.pending[1:]
		l.admit(t)
	}
}

// Cancel aborts a transfer; its onDone never fires. It reports whether the
// transfer was still pending or active.
func (l *Link) Cancel(t *Transfer) bool {
	if t == nil || t.canceled || t.ended != 0 {
		return false
	}
	t.canceled = true
	if t.latEvent != nil {
		l.eng.Cancel(t.latEvent)
		t.latEvent = nil
		return true
	}
	for i, p := range l.pending {
		if p == t {
			l.pending = append(l.pending[:i], l.pending[i+1:]...)
			return true
		}
	}
	for i, a := range l.active {
		if a == t {
			l.settle()
			l.active = append(l.active[:i], l.active[i+1:]...)
			if t.doneEvent != nil {
				l.eng.Cancel(t.doneEvent)
				t.doneEvent = nil
			}
			l.reschedule()
			l.admitPending()
			return true
		}
	}
	return false
}

// settle advances all active transfers' remaining byte counts to Now at the
// current fair-share rate.
func (l *Link) settle() {
	now := l.eng.Now()
	if now == l.lastUpdate || len(l.active) == 0 {
		l.lastUpdate = now
		return
	}
	rate := l.bandwidth / float64(len(l.active))
	dt := now.Sub(l.lastUpdate).Seconds()
	for _, t := range l.active {
		t.remaining -= rate * dt
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
	l.lastUpdate = now
}

// reschedule recomputes each active transfer's completion event for the new
// fair-share rate.
func (l *Link) reschedule() {
	l.lastUpdate = l.eng.Now()
	if len(l.active) == 0 {
		return
	}
	rate := l.bandwidth / float64(len(l.active))
	for _, t := range l.active {
		if t.doneEvent != nil {
			l.eng.Cancel(t.doneEvent)
		}
		eta := time.Duration(t.remaining / rate * float64(time.Second))
		tt := t
		t.doneEvent = l.eng.Schedule(eta, func() {
			tt.doneEvent = nil
			l.finish(tt)
		})
	}
}

func (l *Link) finish(t *Transfer) {
	l.settle()
	for i, a := range l.active {
		if a == t {
			l.active = append(l.active[:i], l.active[i+1:]...)
			break
		}
	}
	t.ended = l.eng.Now()
	t.remaining = 0
	l.totalBytes += float64(t.size)
	l.completedCount++
	l.reschedule()
	l.admitPending()
	if t.onDone != nil {
		t.onDone()
	}
}

// Network is a named collection of links, one per site plus one for the user
// origin, resolved by name.
type Network struct {
	eng   sim.Engine
	links map[string]*Link
}

// NewNetwork returns an empty network.
func NewNetwork(eng sim.Engine) *Network {
	return &Network{eng: eng, links: make(map[string]*Link)}
}

// AddLink creates and registers a link. It panics on duplicate names.
func (n *Network) AddLink(name string, bandwidth float64, latency time.Duration) *Link {
	if _, dup := n.links[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %q", name))
	}
	l := NewLink(n.eng, name, bandwidth, latency)
	n.links[name] = l
	return l
}

// Link returns the named link, or nil.
func (n *Network) Link(name string) *Link { return n.links[name] }
