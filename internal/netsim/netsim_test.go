package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"aimes/internal/sim"
)

const mb = 1 << 20

func TestSingleTransferTime(t *testing.T) {
	eng := sim.NewSim()
	l := NewLink(eng, "wan", 10*mb, 100*time.Millisecond)
	var done sim.Time
	l.Start(10*mb, func() { done = eng.Now() })
	eng.Run()
	want := sim.Time(1100 * time.Millisecond) // 0.1s latency + 1s payload
	if done != want {
		t.Fatalf("done at %v, want %v", done, want)
	}
	if l.Completed() != 1 || l.TotalBytes() != 10*mb {
		t.Fatalf("completed=%d bytes=%g", l.Completed(), l.TotalBytes())
	}
}

func TestFairSharing(t *testing.T) {
	eng := sim.NewSim()
	l := NewLink(eng, "wan", 10*mb, 0)
	var t1, t2 sim.Time
	l.Start(10*mb, func() { t1 = eng.Now() })
	l.Start(10*mb, func() { t2 = eng.Now() })
	eng.Run()
	// Two equal transfers sharing the link: both finish at 2s.
	if math.Abs(t1.Seconds()-2) > 1e-9 || math.Abs(t2.Seconds()-2) > 1e-9 {
		t.Fatalf("t1=%v t2=%v, want both 2s", t1, t2)
	}
}

func TestShareRecomputedOnCompletion(t *testing.T) {
	eng := sim.NewSim()
	l := NewLink(eng, "wan", 10*mb, 0)
	var small, large sim.Time
	l.Start(5*mb, func() { small = eng.Now() })
	l.Start(15*mb, func() { large = eng.Now() })
	eng.Run()
	// Shared 5 MB/s each: small done at 1s. Then large has 10 MB left at
	// full 10 MB/s: done at 2s.
	if math.Abs(small.Seconds()-1) > 1e-9 {
		t.Fatalf("small done at %v, want 1s", small)
	}
	if math.Abs(large.Seconds()-2) > 1e-9 {
		t.Fatalf("large done at %v, want 2s", large)
	}
}

func TestStaggeredArrival(t *testing.T) {
	eng := sim.NewSim()
	l := NewLink(eng, "wan", 10*mb, 0)
	var first sim.Time
	l.Start(10*mb, func() { first = eng.Now() })
	eng.Schedule(500*time.Millisecond, func() {
		l.Start(10*mb, nil)
	})
	eng.Run()
	// First: 5 MB alone (0.5s), then 5 MB at half rate (1s) => 1.5s.
	if math.Abs(first.Seconds()-1.5) > 1e-9 {
		t.Fatalf("first done at %v, want 1.5s", first)
	}
}

func TestZeroSizeTransferPaysLatency(t *testing.T) {
	eng := sim.NewSim()
	l := NewLink(eng, "wan", mb, 250*time.Millisecond)
	var done sim.Time
	l.Start(0, func() { done = eng.Now() })
	eng.Run()
	if done != sim.Time(250*time.Millisecond) {
		t.Fatalf("done at %v, want 250ms", done)
	}
}

func TestCancelPendingTransfer(t *testing.T) {
	eng := sim.NewSim()
	l := NewLink(eng, "wan", mb, time.Second)
	fired := false
	tr := l.Start(mb, func() { fired = true })
	if !l.Cancel(tr) {
		t.Fatal("cancel failed")
	}
	eng.Run()
	if fired {
		t.Fatal("canceled transfer completed")
	}
	if l.Cancel(tr) {
		t.Fatal("double cancel succeeded")
	}
}

func TestCancelActiveTransferSpeedsOthers(t *testing.T) {
	eng := sim.NewSim()
	l := NewLink(eng, "wan", 10*mb, 0)
	var done sim.Time
	l.Start(10*mb, func() { done = eng.Now() })
	victim := l.Start(100*mb, nil)
	eng.Schedule(time.Second, func() { l.Cancel(victim) })
	eng.Run()
	// 1s shared (5 MB moved), then 5 MB at full rate (0.5s) => 1.5s.
	if math.Abs(done.Seconds()-1.5) > 1e-9 {
		t.Fatalf("done at %v, want 1.5s", done)
	}
	if l.Active() != 0 {
		t.Fatalf("active=%d after drain", l.Active())
	}
}

func TestEstimate(t *testing.T) {
	eng := sim.NewSim()
	l := NewLink(eng, "wan", 10*mb, 100*time.Millisecond)
	if got := l.Estimate(10 * mb); got != 1100*time.Millisecond {
		t.Fatalf("Estimate = %v, want 1.1s", got)
	}
}

func TestNetworkRegistry(t *testing.T) {
	eng := sim.NewSim()
	n := NewNetwork(eng)
	l := n.AddLink("stampede", mb, 0)
	if n.Link("stampede") != l {
		t.Fatal("lookup failed")
	}
	if n.Link("missing") != nil {
		t.Fatal("missing link returned non-nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate link did not panic")
		}
	}()
	n.AddLink("stampede", mb, 0)
}

func TestLinkValidation(t *testing.T) {
	eng := sim.NewSim()
	for _, fn := range []func(){
		func() { NewLink(eng, "x", 0, 0) },
		func() { NewLink(eng, "x", mb, -time.Second) },
		func() { NewLink(eng, "x", mb, 0).Start(-1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid construction did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: N equal concurrent transfers of size S on capacity C complete at
// N*S/C (work conservation), and total bytes accounting matches.
func TestWorkConservationProperty(t *testing.T) {
	prop := func(nRaw, sRaw uint8) bool {
		n := int(nRaw%8) + 1
		size := (int64(sRaw%50) + 1) * mb
		eng := sim.NewSim()
		l := NewLink(eng, "wan", 10*mb, 0)
		var last sim.Time
		for i := 0; i < n; i++ {
			l.Start(size, func() { last = eng.Now() })
		}
		eng.Run()
		want := float64(n) * float64(size) / (10 * mb)
		if math.Abs(last.Seconds()-want) > 1e-6 {
			return false
		}
		return l.TotalBytes() == float64(n)*float64(size) && l.Completed() == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a transfer's end time is never earlier than the idle-link
// estimate, regardless of competing load.
func TestEstimateIsLowerBoundProperty(t *testing.T) {
	prop := func(seed int64, compRaw uint8) bool {
		eng := sim.NewSim()
		l := NewLink(eng, "wan", 5*mb, 50*time.Millisecond)
		size := int64(7 * mb)
		est := l.Estimate(size)
		var done sim.Time
		l.Start(size, func() { done = eng.Now() })
		for i := 0; i < int(compRaw%10); i++ {
			l.Start(mb*int64(1+i%3), nil)
		}
		eng.Run()
		return done.Duration() >= est
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrencyBoundQueuesFIFO(t *testing.T) {
	eng := sim.NewSim()
	l := NewLink(eng, "wan", 10*mb, 0)
	l.SetMaxConcurrent(2)
	var order []int
	for i := 0; i < 4; i++ {
		idx := i
		l.Start(10*mb, func() { order = append(order, idx) })
	}
	eng.Schedule(time.Millisecond, func() {
		if l.Active() != 2 || l.Pending() != 2 {
			t.Errorf("active=%d pending=%d, want 2/2", l.Active(), l.Pending())
		}
	})
	eng.Run()
	if len(order) != 4 {
		t.Fatalf("completed %d, want 4", len(order))
	}
	// First two admitted together finish first, then the queued pair.
	if order[2] != 2 && order[2] != 3 {
		t.Fatalf("order = %v, want FIFO admission", order)
	}
}

func TestConcurrencyBoundPreservesAggregateTime(t *testing.T) {
	// Total time for N equal files is N*S/C regardless of the bound.
	for _, bound := range []int{0, 1, 4} {
		eng := sim.NewSim()
		l := NewLink(eng, "wan", 10*mb, 0)
		l.SetMaxConcurrent(bound)
		var last sim.Time
		for i := 0; i < 8; i++ {
			l.Start(5*mb, func() { last = eng.Now() })
		}
		eng.Run()
		if math.Abs(last.Seconds()-4) > 1e-9 {
			t.Fatalf("bound %d: finished at %v, want 4s", bound, last)
		}
	}
}

func TestCancelPendingQueuedTransfer(t *testing.T) {
	eng := sim.NewSim()
	l := NewLink(eng, "wan", mb, 0)
	l.SetMaxConcurrent(1)
	l.Start(mb, nil)
	fired := false
	victim := l.Start(mb, func() { fired = true })
	eng.Schedule(time.Millisecond, func() {
		if !l.Cancel(victim) {
			t.Error("cancel of queued transfer failed")
		}
	})
	eng.Run()
	if fired {
		t.Fatal("canceled queued transfer completed")
	}
	if l.Completed() != 1 {
		t.Fatalf("completed %d, want 1", l.Completed())
	}
}
