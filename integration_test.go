package aimes_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"aimes"
	"aimes/internal/experiments"
	"aimes/internal/netsim"
	"aimes/internal/pilot"
	"aimes/internal/saga"
	"aimes/internal/sim"
	"aimes/internal/trace"
)

// TestFullPipelineTextConfig drives the complete pipeline from a text-format
// skeleton config through execution, as a user of the CLI tools would.
func TestFullPipelineTextConfig(t *testing.T) {
	cfg := `
name = pipeline
stage = prep
tasks = 8
duration = uniform 30 90
input = constant 2097152
output = constant 524288

stage = solve
tasks = 8
inputs_from = one-to-one
duration = truncnormal 300 60 60 600
output = constant 4096
`
	app, err := aimes.ParseAppText(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	env, err := aimes.NewSimulatedEnvironment(aimes.EnvConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	report, err := env.RunApp(app, aimes.StrategyConfig{
		Binding: aimes.LateBinding, Scheduler: aimes.SchedBackfill, Pilots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.UnitsDone != 16 {
		t.Fatalf("done = %d, want 16", report.UnitsDone)
	}
	if report.Efficiency <= 0 || report.CoreHours <= 0 {
		t.Fatalf("efficiency accounting missing: %+v", report)
	}
}

// TestFailureInjectionThroughFacade verifies automatic restarts across the
// whole stack.
func TestFailureInjectionThroughFacade(t *testing.T) {
	pcfg := aimes.PilotConfig{
		AgentDispatchOverhead: 100 * time.Millisecond,
		UnitFailureProb:       0.3,
		DefaultMaxRestarts:    5,
	}
	env, err := aimes.NewSimulatedEnvironment(aimes.EnvConfig{Seed: 33, Pilot: &pcfg})
	if err != nil {
		t.Fatal(err)
	}
	report, err := env.RunApp(aimes.BagOfTasks(64, aimes.UniformDuration()), aimes.StrategyConfig{
		Binding: aimes.LateBinding, Scheduler: aimes.SchedBackfill, Pilots: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.UnitsDone != 64 {
		t.Fatalf("done = %d, want 64 (restarts should absorb failures)", report.UnitsDone)
	}
	if report.TotalRestarts == 0 {
		t.Fatal("no restarts at 30% failure probability")
	}
}

// TestTraceExportFormats exercises the introspection exporters end to end.
func TestTraceExportFormats(t *testing.T) {
	env, err := aimes.NewSimulatedEnvironment(aimes.EnvConfig{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.RunApp(aimes.BagOfTasks(4, aimes.UniformDuration()), aimes.StrategyConfig{
		Binding: aimes.EarlyBinding, Scheduler: aimes.SchedDirect, Pilots: 1,
	}); err != nil {
		t.Fatal(err)
	}
	var csv, jsonBuf bytes.Buffer
	if err := env.Recorder().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := env.Recorder().WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "EXECUTING") {
		t.Fatal("CSV trace missing execution records")
	}
	if !strings.Contains(jsonBuf.String(), `"entity"`) {
		t.Fatal("JSON trace malformed")
	}
	// Pilot lifecycle fully recorded.
	for _, state := range []string{"NEW", "LAUNCHING", "PENDING", "ACTIVE"} {
		if len(env.Recorder().ByState(state)) == 0 {
			t.Fatalf("trace missing pilot state %s", state)
		}
	}
}

// TestStrategyComparisonInvariants checks cross-strategy report invariants
// on identical seeds: late binding activates more pilots, both complete the
// workload, components are internally consistent.
func TestStrategyComparisonInvariants(t *testing.T) {
	for seed := int64(50); seed < 54; seed++ {
		run := func(cfg aimes.StrategyConfig) *aimes.Report {
			env, err := aimes.NewSimulatedEnvironment(aimes.EnvConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			r, err := env.RunApp(aimes.BagOfTasks(32, aimes.UniformDuration()), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		early := run(aimes.StrategyConfig{
			Binding: aimes.EarlyBinding, Scheduler: aimes.SchedDirect, Pilots: 1})
		late := run(aimes.StrategyConfig{
			Binding: aimes.LateBinding, Scheduler: aimes.SchedBackfill, Pilots: 3})

		for _, r := range []*aimes.Report{early, late} {
			if r.UnitsDone != 32 {
				t.Fatalf("seed %d: done = %d", seed, r.UnitsDone)
			}
			if r.TTC < r.Tw {
				t.Fatalf("seed %d: TTC %v < Tw %v", seed, r.TTC, r.Tw)
			}
			if r.TTC >= r.Tw+r.Tx+r.Ts {
				t.Fatalf("seed %d: no component overlap", seed)
			}
			if r.Tx < 15*time.Minute {
				t.Fatalf("seed %d: Tx %v below task duration", seed, r.Tx)
			}
		}
		if early.PilotsActivated != 1 {
			t.Fatalf("seed %d: early activated %d pilots", seed, early.PilotsActivated)
		}
	}
}

// TestRunAdaptiveThroughFacade exercises the runtime-adaptation API.
func TestRunAdaptiveThroughFacade(t *testing.T) {
	env, err := aimes.NewSimulatedEnvironment(aimes.EnvConfig{Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	w, err := aimes.GenerateWorkload(aimes.BagOfTasks(16, aimes.UniformDuration()), 60)
	if err != nil {
		t.Fatal(err)
	}
	s, err := env.Derive(w, aimes.StrategyConfig{
		Binding: aimes.LateBinding, Scheduler: aimes.SchedBackfill, Pilots: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := env.RunAdaptive(w, s, aimes.AdaptiveConfig{
		Patience:       5 * time.Minute,
		MaxExtraPilots: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.UnitsDone != 16 {
		t.Fatalf("done = %d", report.UnitsDone)
	}
}

// TestChoosePilotCountThroughFacade exercises the heuristic via primed
// bundle history.
func TestChoosePilotCountThroughFacade(t *testing.T) {
	env, err := aimes.NewSimulatedEnvironment(aimes.EnvConfig{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range aimes.DefaultTestbed() {
		r := env.Bundle().Resource(cfg.Name)
		for i := 0; i < 64; i++ {
			r.ObserveWait(float64(300 + 100*i%2000))
		}
	}
	w, err := aimes.GenerateWorkload(aimes.BagOfTasks(128, aimes.UniformDuration()), 61)
	if err != nil {
		t.Fatal(err)
	}
	k := aimes.ChoosePilotCount(w, env.Bundle(), 5)
	if k < 1 || k > 5 {
		t.Fatalf("k = %d out of range", k)
	}
}

// TestSequentialRunsShareEnvironment verifies an environment survives
// multiple workload executions with a consistent clock and trace.
func TestSequentialRunsShareEnvironment(t *testing.T) {
	env, err := aimes.NewSimulatedEnvironment(aimes.EnvConfig{Seed: 70})
	if err != nil {
		t.Fatal(err)
	}
	var prevLen int
	for i := 0; i < 3; i++ {
		report, err := env.RunApp(aimes.BagOfTasks(8, aimes.UniformDuration()), aimes.StrategyConfig{
			Binding: aimes.LateBinding, Scheduler: aimes.SchedBackfill, Pilots: 2,
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if report.UnitsDone != 8 {
			t.Fatalf("run %d: done = %d", i, report.UnitsDone)
		}
		if env.Recorder().Len() <= prevLen {
			t.Fatalf("run %d: trace did not grow", i)
		}
		prevLen = env.Recorder().Len()
	}
}

// TestAblationOutputsWellFormed smoke-tests every ablation table end to end
// with minimal repetitions.
func TestAblationOutputsWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations need simulation time")
	}
	cases := []struct {
		name string
		fn   func(*bytes.Buffer) error
		want string
	}{
		{"pilots", func(b *bytes.Buffer) error { return experiments.AblationPilotCount(b, 64, 2, 0) }, "pilot-count sweep"},
		{"predict", func(b *bytes.Buffer) error { return experiments.AblationPrediction(b, 64, 2, 0) }, "predicted-wait"},
		{"failures", func(b *bytes.Buffer) error { return experiments.AblationFailures(b, 32, 2, 0) }, "fail_prob"},
		{"throughput", func(b *bytes.Buffer) error { return experiments.AblationThroughput(b, 64, 2, 0) }, "units/hour"},
		{"hetero", func(b *bytes.Buffer) error { return experiments.AblationHeterogeneous(b, 64, 2, 0) }, "lognormal"},
		{"adaptive", func(b *bytes.Buffer) error { return experiments.AblationAdaptive(b, 32, 2, 0) }, "adaptive"},
		{"autok", func(b *bytes.Buffer) error { return experiments.AblationAutoPilots(b, 64, 2, 0) }, "auto-k"},
		{"efficiency", func(b *bytes.Buffer) error { return experiments.AblationEfficiency(b, 64, 2, 0) }, "core_hours"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := c.fn(&buf); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !strings.Contains(buf.String(), c.want) {
			t.Fatalf("%s output missing %q:\n%s", c.name, c.want, buf.String())
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) < 3 {
			t.Fatalf("%s produced %d lines", c.name, len(lines))
		}
	}
}

// TestRealTimePilotExecution proves the middleware is engine-agnostic: the
// same pilot system executes a workload on the wall-clock engine with the
// local SAGA adaptor.
func TestRealTimePilotExecution(t *testing.T) {
	eng := sim.NewRealTime()
	sess := saga.NewSession()
	sess.Register(saga.NewLocalAdaptor(eng, 2))
	loop := netsim.NewLink(eng, "loopback", 1e9, time.Millisecond)
	links := func(string) *netsim.Link { return loop }
	cfg := pilot.Config{AgentDispatchOverhead: time.Millisecond, DefaultMaxRestarts: 1}
	sys := pilot.NewSystem(eng, sess, links, trace.NewRecorder(), cfg, nil)
	pm := pilot.NewPilotManager(sys)
	um := pilot.NewUnitManager(sys, pilot.Backfill{})
	p, err := pm.Submit(pilot.PilotDescription{
		Resource: "localhost", Cores: 2, Walltime: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	um.AddPilot(p)
	done := make(chan struct{})
	um.OnCompletion(func() {
		pm.CancelAll()
		close(done)
	})
	descs := make([]pilot.UnitDescription, 6)
	for i := range descs {
		descs[i] = pilot.UnitDescription{
			Name:     string(rune('a' + i)),
			Cores:    1,
			Duration: 5 * time.Millisecond,
		}
	}
	if err := um.Submit(descs); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("real-time workload did not complete")
	}
	for _, u := range um.Units() {
		if u.State() != pilot.UnitDone {
			t.Fatalf("unit %s state %v", u.Name(), u.State())
		}
	}
}
