package aimes

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aimes/internal/core"
	"aimes/internal/shard"
	"aimes/internal/trace"
)

// JobState is the lifecycle state of a submitted job.
type JobState int32

// Job lifecycle states.
const (
	// JobPending is the zero state of a handle before enactment. Submit
	// enacts synchronously, so jobs it returns are already JobRunning (or
	// were rejected); JobPending is never observed on a submitted job.
	JobPending JobState = iota
	// JobRunning is an enacted job whose units are in flight.
	JobRunning
	// JobDone is a completed job with a report (individual units may still
	// have failed; see Report.UnitsFailed).
	JobDone
	// JobFailed is a job that cannot complete (e.g. the engine drained with
	// the workload incomplete); Err holds the cause.
	JobFailed
	// JobCanceled is a job ended by Cancel; the report accounts the
	// canceled units.
	JobCanceled
)

func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return fmt.Sprintf("JobState(%d)", int32(s))
}

// Final reports whether the state is terminal.
func (s JobState) Final() bool { return s >= JobDone }

// Event is one state transition streamed live from a job's trace: pilot
// transitions ("pilot.stampede.s0-j3-1" → ACTIVE), unit transitions
// ("unit.task-0007" → EXECUTING) and execution-manager strategy transitions
// ("em" → ENACTING/ADAPTED/CANCELED/DONE).
type Event struct {
	// Job is the originating job's sequence number (Job.ID).
	Job int
	// Time is the engine time of the transition (offset from the job's
	// shard epoch; shards keep independent clocks).
	Time time.Duration
	// Entity names what changed state, e.g. "pilot.comet.s1-j2-1",
	// "unit.t0004", or "em" for the execution manager itself.
	Entity string
	// State is the new state, e.g. "PENDING_ACTIVE", "EXECUTING", "ADAPTED".
	State string
	// Detail carries transition-specific context.
	Detail string
}

// Placement selects how Submit maps jobs onto the environment's parallel
// simulation shards (see WithShards).
type Placement = shard.Policy

// Placement policies.
const (
	// PlaceRoundRobin cycles submissions across shards in order (the
	// default). With a fixed submission sequence it is deterministic.
	PlaceRoundRobin = shard.RoundRobin
	// PlaceLeastLoaded places the job on the shard with the fewest
	// in-flight tasks, balancing heterogeneous tenants at the cost of
	// placement depending on completion timing.
	PlaceLeastLoaded = shard.LeastLoaded
	// PlacePinned places the job on JobConfig.Shard. Pin jobs that need
	// cross-run determinism: the same environment seed and the same
	// per-shard submission order reproduce identical reports, regardless of
	// traffic on other shards.
	PlacePinned = shard.Pinned
)

// JobConfig configures one Submit call.
type JobConfig struct {
	// StrategyConfig holds the derivation knobs; ignored when Strategy is
	// set. Submit validates it (Environment.Validate) before deriving.
	StrategyConfig
	// Strategy, when non-nil, is enacted verbatim instead of deriving one
	// from StrategyConfig.
	Strategy *Strategy
	// Adaptive, when non-nil, enables runtime strategy adaptation (extra
	// pilots on slow activation, lost-pilot replacement).
	Adaptive *AdaptiveConfig
	// EventBuffer overrides the environment's per-job Events capacity when
	// positive.
	EventBuffer int
	// Placement selects the shard the job runs on: PlaceRoundRobin (the
	// zero value), PlaceLeastLoaded, or PlacePinned.
	Placement Placement
	// Shard is the target shard index when Placement is PlacePinned
	// (0 <= Shard < Environment.Shards()); ignored otherwise.
	Shard int
}

// Job is an asynchronous handle on one submitted workload. All methods are
// safe for concurrent use.
type Job struct {
	id    int
	env   *Environment
	shard *shardEnv
	ns    string
	tasks int
	exec  *core.Execution
	rec   *trace.Recorder

	state        atomic.Int32
	events       chan Event
	eventsClosed atomic.Bool
	dropped      atomic.Int64

	mu           sync.Mutex // guards report, err, cancelReason, completed
	completed    bool
	report       *Report
	err          error
	cancelReason string
	done         chan struct{}
}

// Submit validates, derives (unless cfg.Strategy is set) and enacts a
// workload on the shared environment, returning an asynchronous Job handle
// immediately. The job is placed on one of the environment's simulation
// shards (cfg.Placement: round-robin by default, least-loaded, or pinned);
// any number of jobs run concurrently, and jobs on different shards execute
// truly in parallel. Each job gets its own trace recorder, a shard-qualified
// pilot-ID namespace ("s<shard>-j<seq>", shard-local sequence), and an event
// stream; within a shard the engine interleaves tenants fairly in submission
// order at each timestep.
//
// ctx gates admission (a canceled context rejects the submission) and bounds
// the job's lifetime: if ctx is canceled while the job runs, the job is
// canceled. Waiting and job lifetime are otherwise independent — pass
// context.Background() for an unbounded job.
func (e *Environment) Submit(ctx context.Context, w *Workload, cfg JobConfig) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	buf := cfg.EventBuffer
	if buf <= 0 {
		buf = e.eventBuf
	}
	// Validate before placement, so rejected submissions perturb neither the
	// round-robin cursor nor any ID sequence. (Derivation itself can still
	// fail on the shard; see the ID rollback below.)
	if cfg.Strategy != nil {
		if w == nil || w.TotalTasks() == 0 {
			return nil, fmt.Errorf("aimes: zero-task workload (generate tasks before submitting)")
		}
	} else if err := e.Validate(w, cfg.StrategyConfig); err != nil {
		return nil, err
	}

	// Placement and global-ID allocation hold the submission lock only
	// briefly — never across the shard's derive/enact critical section — so
	// a busy shard cannot stall submissions to the others.
	e.jobMu.Lock()
	k, err := e.picker.Pick(cfg.Placement, cfg.Shard, e.shardLoad)
	if err != nil {
		e.jobMu.Unlock()
		return nil, err
	}
	sh := e.shards[k]
	id := e.jobSeq + 1
	e.jobSeq = id
	e.jobMu.Unlock()

	var (
		job    *Job
		reterr error
	)
	sh.sync(func() {
		var s Strategy
		if cfg.Strategy != nil {
			s = *cfg.Strategy
		} else {
			var err error
			s, err = core.Derive(w, sh.bndl, cfg.StrategyConfig, sh.rng)
			if err != nil {
				reterr = err
				return
			}
		}

		ns := shard.Namespace(sh.id, sh.jobSeq+1)
		rec := trace.NewRecorder()
		j := &Job{
			id:     id,
			env:    e,
			shard:  sh,
			ns:     ns,
			tasks:  w.TotalTasks(),
			rec:    rec,
			events: make(chan Event, buf),
			done:   make(chan struct{}),
		}
		rec.Observe(j.publish)
		// Tee every record into the shard's trace (which in turn tees into
		// the environment aggregate, see NewEnv). Entities whose IDs carry
		// no namespace of their own ("em", "unit.<name>") are scoped to the
		// job, so same-named units of different tenants stay
		// distinguishable; pilot IDs are namespaced at the source.
		shardRec := sh.mgr.Recorder()
		rec.Observe(func(r trace.Record) {
			shardRec.Record(r.Time, trace.QualifyEntity(r.Entity, ns), r.State, r.Detail)
		})

		opts := core.ExecOptions{Recorder: rec, Namespace: ns}
		var (
			exec *core.Execution
			err  error
		)
		if cfg.Adaptive != nil {
			exec, err = sh.mgr.ExecuteAdaptiveWith(w, s, *cfg.Adaptive, opts)
		} else {
			exec, err = sh.mgr.ExecuteWith(w, s, opts)
		}
		if err != nil {
			reterr = err
			return
		}
		sh.jobSeq++
		sh.inflight.Add(int64(j.tasks))
		j.exec = exec
		j.state.Store(int32(JobRunning))
		exec.OnComplete(func(r *Report) { j.complete(r, nil) })
		job = j
	})
	if reterr != nil {
		// Return the global ID unless a later submission already claimed the
		// next one (then the gap is unavoidable and harmless).
		e.jobMu.Lock()
		if e.jobSeq == id {
			e.jobSeq = id - 1
		}
		e.jobMu.Unlock()
		return nil, reterr
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				job.Cancel("context: " + ctx.Err().Error())
			case <-job.done:
			}
		}()
	}
	return job, nil
}

// shardLoad reports shard k's in-flight task count, the least-loaded
// placement signal.
func (e *Environment) shardLoad(k int) int { return int(e.shards[k].inflight.Load()) }

// ID returns the job's sequence number within its environment (1-based,
// across all shards).
func (j *Job) ID() int { return j.id }

// Shard returns the index of the simulation shard the job was placed on.
func (j *Job) Shard() int { return j.shard.id }

// Namespace returns the job's shard-qualified namespace, "s<shard>-j<seq>"
// with a shard-local sequence number. It scopes the job's pilot IDs
// ("pilot.<resource>.s0-j3-1") and its "em"/"unit" entities in the aggregate
// trace ("em.s0-j3", "unit.s0-j3.<name>").
func (j *Job) Namespace() string { return j.ns }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState { return JobState(j.state.Load()) }

// Strategy returns the enacted execution strategy.
func (j *Job) Strategy() Strategy { return j.exec.Strategy() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Report returns the final report, or nil while the job is running.
func (j *Job) Report() *Report {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.report
	default:
		return nil
	}
}

// Err returns the terminal error for failed jobs, or nil.
func (j *Job) Err() error {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.err
	default:
		return nil
	}
}

// Events returns the job's live event stream: every pilot, unit and strategy
// transition, in order, closed when the job ends. The channel is buffered;
// if a consumer falls behind, excess events are dropped (EventsDropped) so
// the simulation never blocks on a slow reader.
func (j *Job) Events() <-chan Event { return j.events }

// EventsDropped reports how many events were dropped because the Events
// buffer was full.
func (j *Job) EventsDropped() int64 { return j.dropped.Load() }

// Wait blocks until the job completes and returns its report. On a
// virtual-time environment the waiting goroutine pumps the job's shard
// (whoever waits, advances that shard's time — concurrent waiters interleave
// on the same shard and run in parallel across shards); on a wall-clock
// environment it blocks while timers fire.
//
// ctx bounds the wait only: when it expires, Wait returns ctx.Err() and the
// job keeps running (use Cancel, or a Submit ctx, to stop the job itself).
// Canceled jobs return their report with a nil error; inspect Job.State and
// Report.UnitsCanceled to distinguish them.
func (j *Job) Wait(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		select {
		case <-j.done:
			j.mu.Lock()
			defer j.mu.Unlock()
			return j.report, j.err
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		if j.shard.stepper == nil {
			select {
			case <-j.done:
				j.mu.Lock()
				defer j.mu.Unlock()
				return j.report, j.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		j.shard.pump(j)
	}
}

// Cancel aborts a running job: every non-final unit is canceled, its pilots
// are torn down, and the job completes immediately in state JobCanceled with
// a report accounting the canceled units. Canceling a finished job is a
// no-op.
func (j *Job) Cancel(reason string) {
	if reason == "" {
		reason = "canceled"
	}
	j.shard.sync(func() {
		if j.finished() {
			return
		}
		j.mu.Lock()
		if j.cancelReason == "" {
			j.cancelReason = reason
		}
		j.mu.Unlock()
		j.exec.Cancel(reason)
	})
}

// finished reports terminal state without blocking.
func (j *Job) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// publish streams one trace record to the job's event channel, dropping
// rather than blocking when the consumer lags. It runs under the engine's
// callback serialization.
func (j *Job) publish(r trace.Record) {
	if j.eventsClosed.Load() {
		return
	}
	ev := Event{Job: j.id, Time: r.Time.Duration(), Entity: r.Entity,
		State: r.State, Detail: r.Detail}
	select {
	case j.events <- ev:
	default:
		j.dropped.Add(1)
	}
}

// complete records the terminal outcome exactly once and releases waiters
// and event consumers.
func (j *Job) complete(r *Report, err error) {
	j.mu.Lock()
	if j.completed {
		j.mu.Unlock()
		return
	}
	j.completed = true
	j.report, j.err = r, err
	st := JobDone
	switch {
	case j.cancelReason != "":
		st = JobCanceled
	case err != nil:
		st = JobFailed
	}
	j.state.Store(int32(st))
	j.mu.Unlock()
	j.shard.inflight.Add(int64(-j.tasks))
	j.eventsClosed.Store(true)
	close(j.events)
	close(j.done)
}

// pumpBatch bounds how many events one Wait iteration fires while holding
// the shard lock, so concurrent waiters, submitters and cancelers of the
// same shard interleave promptly.
const pumpBatch = 64

// pump advances virtual time on behalf of a waiting job: whoever waits,
// steps — and only this job's shard, so waiters on different shards fire
// events truly in parallel. All access to one shard's engine runs under its
// mutex; concurrent waiters of the same shard take turns firing batches, and
// any waiter's step may complete any tenant's job on that shard.
func (sh *shardEnv) pump(j *Job) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if j.finished() {
		return
	}
	if sh.stepBatch(j) && !j.finished() {
		// The shard's engine drained with this job incomplete: nothing
		// scheduled can make it progress, so fail it with the diagnostic
		// state summary. Other live jobs on the shard fail the same way when
		// their waiters observe the drain; new submissions refill the queue
		// first.
		j.complete(nil, j.exec.IncompleteError())
	}
}

// stepBatch fires up to pumpBatch events on the shard's engine and reports
// whether the event queue drained. Batch-capable engines fire in one call;
// otherwise events fire one at a time, stopping early once j completes.
func (sh *shardEnv) stepBatch(j *Job) (drained bool) {
	if sh.batch != nil {
		return sh.batch.StepN(pumpBatch) < pumpBatch
	}
	for i := 0; i < pumpBatch; i++ {
		if j.finished() {
			return false
		}
		if !sh.stepper.Step() {
			return true
		}
	}
	return false
}
