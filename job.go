package aimes

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aimes/internal/backend"
	"aimes/internal/core"
	"aimes/internal/model"
	"aimes/internal/shard"
	"aimes/internal/trace"
)

// JobState is the lifecycle state of a submitted job.
type JobState int32

// Job lifecycle states.
const (
	// JobPending is the zero state of a handle before admission; it is never
	// observed on a job returned by Submit (which either enacts the job,
	// queues it, or rejects the submission).
	JobPending JobState = iota
	// JobQueued is a submitted job awaiting enactment behind its shard's
	// admission window. It only occurs on work-stealing environments
	// (WithWorkStealing): without stealing Submit enacts synchronously. A
	// queued job holds no engine state — no pilots, no events, no randomness
	// drawn — which is exactly what makes it safe to migrate to another
	// shard.
	JobQueued
	// JobRunning is an enacted job whose units are in flight.
	JobRunning
	// JobDone is a completed job with a report (individual units may still
	// have failed; see Report.UnitsFailed).
	JobDone
	// JobFailed is a job that cannot complete (e.g. the engine drained with
	// the workload incomplete, or the job's worker process died); Err holds
	// the cause.
	JobFailed
	// JobCanceled is a job ended by Cancel; the report accounts the
	// canceled units.
	JobCanceled
)

func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return fmt.Sprintf("JobState(%d)", int32(s))
}

// Final reports whether the state is terminal.
func (s JobState) Final() bool { return s >= JobDone }

// Event is one state transition streamed live from a job's trace: pilot
// transitions ("pilot.stampede.s0-j3-1" → ACTIVE), unit transitions
// ("unit.task-0007" → EXECUTING) and execution-manager strategy transitions
// ("em" → ENACTING/MIGRATED/ADAPTED/CANCELED/DONE).
type Event struct {
	// Job is the originating job's sequence number (Job.ID).
	Job int
	// Time is the engine time of the transition (offset from the job's
	// shard epoch; shards keep independent clocks).
	Time time.Duration
	// Entity names what changed state, e.g. "pilot.comet.s1-j2-1",
	// "unit.t0004", or "em" for the execution manager itself.
	Entity string
	// State is the new state, e.g. "PENDING_ACTIVE", "EXECUTING", "ADAPTED".
	State string
	// Detail carries transition-specific context.
	Detail string
}

// Placement selects how Submit maps jobs onto the environment's parallel
// simulation shards (see WithShards).
type Placement = shard.Policy

// Placement policies.
const (
	// PlaceRoundRobin cycles submissions across shards in order (the
	// default). With a fixed submission sequence it is deterministic.
	PlaceRoundRobin = shard.RoundRobin
	// PlaceLeastLoaded places the job on the shard with the smallest
	// effective load — pending expected core-seconds (Σ duration × cores
	// over the workload) weighted by the shard's observed drain rate — at
	// the cost of placement depending on completion timing.
	PlaceLeastLoaded = shard.LeastLoaded
	// PlacePinned places the job on JobConfig.Shard. Pin jobs that need
	// cross-run determinism: the same environment seed and the same
	// per-shard submission order reproduce identical reports, regardless of
	// traffic on other shards. On work-stealing environments a pinned,
	// non-migratable submission also seals its shard against incoming
	// migrants, so the contract survives other shards' jobs migrating.
	PlacePinned = shard.Pinned
	// PlacePredictive places the job on the shard with the minimum
	// predicted completion time from the analytical cost model
	// (internal/model): fitted queue wait + backlog drain + the job's own
	// service time at the shard's fitted drain rate. Until completions have
	// warmed the fits this ranks shards exactly like PlaceLeastLoaded; after
	// that it prefers the shard that will finish the job soonest, which on
	// heterogeneous shards is not always the one with the least backlog.
	PlacePredictive = shard.Predictive
)

// MigratePolicy controls whether cross-shard work stealing may hand a
// still-queued job to another shard before enactment (see WithWorkStealing).
// Only queued jobs ever migrate: once enacted, a job's pilots and events are
// bound to its shard and other waiters can at most help pump that shard.
type MigratePolicy int

// Migrate policies.
const (
	// MigrateAuto (the zero value) lets round-robin and least-loaded jobs
	// migrate and keeps pinned jobs where they were pinned.
	MigrateAuto MigratePolicy = iota
	// MigrateAllow opts in explicitly — including pinned jobs, whose pin
	// then only seeds the initial placement. A migratable pinned job does
	// not seal its shard.
	MigrateAllow
	// MigrateNever opts out: the job runs on the shard it was placed on no
	// matter how skewed the load gets. Unlike a pinned submission it does
	// not seal the shard against migrants; determinism-critical tenants pin.
	MigrateNever
)

// JobConfig configures one Submit call.
type JobConfig struct {
	// StrategyConfig holds the derivation knobs; ignored when Strategy is
	// set. Submit validates it (Environment.Validate) before deriving.
	StrategyConfig
	// Strategy, when non-nil, is enacted verbatim instead of deriving one
	// from StrategyConfig.
	Strategy *Strategy
	// Adaptive, when non-nil, enables runtime strategy adaptation (extra
	// pilots on slow activation, lost-pilot replacement).
	Adaptive *AdaptiveConfig
	// EventBuffer overrides the environment's per-job Events capacity when
	// positive.
	EventBuffer int
	// Placement selects the shard the job runs on: PlaceRoundRobin (the
	// zero value), PlaceLeastLoaded, or PlacePinned.
	Placement Placement
	// Shard is the target shard index when Placement is PlacePinned
	// (0 <= Shard < Environment.Shards()); ignored otherwise.
	Shard int
	// Migrate controls whether work stealing may move the job to another
	// shard while it is still queued: MigrateAuto (the zero value),
	// MigrateAllow, or MigrateNever. Ignored without WithWorkStealing.
	Migrate MigratePolicy
}

// Job is an asynchronous handle on one submitted workload. All methods are
// safe for concurrent use.
type Job struct {
	id         int
	env        *Environment
	w          *Workload
	cfg        JobConfig
	cost       int64 // expected work, milli-core-seconds
	migratable bool

	// sh is the shard currently responsible for the job. It changes at most
	// once, during a queued job's migration handoff; after enactment it is
	// stable.
	sh atomic.Pointer[shardEnv]

	state        atomic.Int32
	events       chan Event
	eventsClosed atomic.Bool
	dropped      atomic.Int64

	// mu guards the admission/handoff fields and the terminal outcome.
	// Lock order: a shard's engine lock is always taken before a job's mu,
	// never the other way around.
	mu           sync.Mutex
	ns           string
	strategy     Strategy
	predicted    float64 // model-predicted completion at enactment, virtual seconds
	enacted      bool
	handoff      bool // popped from its origin's queue, not yet landed
	hopped       bool // migrated once already; jobs move at most one hop
	migratedFrom int  // origin shard of the hop, -1 when never migrated
	completed    bool
	report       *Report
	err          error
	cancelReason string
	done         chan struct{}
}

// Submit validates, places and admits a workload on the shared environment,
// returning an asynchronous Job handle immediately. The job is placed on one
// of the environment's simulation shards (cfg.Placement: round-robin by
// default, least-loaded by weighted expected work, or pinned); any number of
// jobs run concurrently, and jobs on different shards execute truly in
// parallel. Without WithWorkStealing the job is enacted synchronously
// (JobRunning on return); with it, a shard whose admission window is full
// queues the job un-enacted (JobQueued) where work stealing may migrate it.
// Each enacted job gets its own trace recorder, a shard-qualified pilot-ID
// namespace ("s<shard>-j<seq>", shard-local sequence), and an event stream;
// within a shard the engine interleaves tenants fairly in submission order
// at each timestep.
//
// ctx gates admission (a canceled context rejects the submission) and bounds
// the job's lifetime: if ctx is canceled while the job runs, the job is
// canceled. Waiting and job lifetime are otherwise independent — pass
// context.Background() for an unbounded job.
func (e *Environment) Submit(ctx context.Context, w *Workload, cfg JobConfig) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Reject early when the environment is gone or going: a closed
	// environment has no backends to enact on, and a draining one has
	// promised its waiters no new work will be admitted. Both races
	// (Close/Drain concurrent with a Submit already past this check) still
	// resolve to descriptive errors — a dead backend fails the enactment,
	// and Drain's live-job sweep loops until the stragglers finish.
	if e.closed.Load() {
		return nil, fmt.Errorf("aimes: Submit on closed environment")
	}
	if e.draining.Load() {
		return nil, fmt.Errorf("aimes: Submit rejected: environment is draining (shutting down)")
	}
	buf := cfg.EventBuffer
	if buf <= 0 {
		buf = e.eventBuf
	}
	// Validate before placement, so rejected submissions perturb neither the
	// round-robin cursor nor any ID sequence. (Derivation itself can still
	// fail on the shard; see the ID rollback below.)
	if cfg.Migrate < MigrateAuto || cfg.Migrate > MigrateNever {
		return nil, fmt.Errorf("aimes: unknown migrate policy %d (want MigrateAuto, MigrateAllow or MigrateNever)", int(cfg.Migrate))
	}
	if cfg.Strategy != nil {
		if w == nil || w.TotalTasks() == 0 {
			return nil, fmt.Errorf("aimes: zero-task workload (generate tasks before submitting)")
		}
	} else if err := e.Validate(w, cfg.StrategyConfig); err != nil {
		return nil, err
	}

	cost := int64(w.CoreSeconds() * 1000)
	if cost < 1 {
		cost = 1
	}
	migratable := e.steal && cfg.Migrate != MigrateNever &&
		(cfg.Migrate == MigrateAllow || cfg.Placement != PlacePinned)

	// Placement, global-ID allocation and the load reservation form one
	// critical section under the submission lock: reserving the job's
	// expected cost on the picked shard before the lock is released is what
	// keeps pick-plus-increment atomic — two concurrent least-loaded
	// Submits can no longer both observe the same "least loaded" shard. The
	// lock is never held across the shard's derive/enact critical section,
	// so a busy shard cannot stall submissions to the others.
	e.jobMu.Lock()
	// The weighted-load snapshot is built lazily: the picker only consults
	// it for least-loaded placement, and round-robin/pinned submissions
	// should not pay the O(shards) scan under the hottest lock.
	var load func(int) float64
	k, err := e.picker.Pick(cfg.Placement, cfg.Shard, float64(cost)/1000, func(k int) float64 {
		if load == nil {
			load = e.loadFunc()
		}
		return load(k)
	})
	if err != nil {
		e.jobMu.Unlock()
		return nil, err
	}
	sh := e.shards[k]
	id := e.jobSeq + 1
	e.jobSeq = id
	sh.pendingCost.Add(cost)
	e.jobMu.Unlock()

	j := &Job{
		id:           id,
		env:          e,
		w:            w,
		cfg:          cfg,
		cost:         cost,
		migratable:   migratable,
		events:       make(chan Event, buf),
		done:         make(chan struct{}),
		migratedFrom: -1,
	}
	j.sh.Store(sh)

	var reterr error
	sh.sync(func() {
		if e.steal && cfg.Placement == PlacePinned && cfg.Migrate != MigrateAllow {
			// A pinned, non-migratable tenant claims determinism on this
			// shard: seal it so no migrant ever lands here and perturbs its
			// trajectory. Sealing here — under the shard's serialization,
			// with admission certain except for derivation errors — rather
			// than at pick time keeps a rejected submission from closing a
			// shard no pinned tenant actually runs on. (A derivation failure
			// below still seals; the tenant demonstrably intends to pin here,
			// and will normally retry.)
			e.stealer.Seal(sh.id)
		}
		sh.jobs[j.id] = j
		if e.steal && (sh.running >= e.windowFor(sh) || len(sh.queue) > 0 || e.respawnPending(sh)) {
			sh.queue = append(sh.queue, j)
			j.state.Store(int32(JobQueued))
			if j.migratable {
				e.stealer.NoteQueued(sh.id, 1)
			}
			return
		}
		if reterr = e.enactLocked(sh, j); reterr != nil {
			delete(sh.jobs, j.id)
		}
	})
	if reterr != nil {
		sh.pendingCost.Add(-cost)
		// Return the global ID unless a later submission already claimed the
		// next one (then the gap is unavoidable and harmless).
		e.jobMu.Lock()
		if e.jobSeq == id {
			e.jobSeq = id - 1
		}
		e.jobMu.Unlock()
		// A Submit that slipped past the early check while Close was tearing
		// the backends down fails enactment with a raw transport error (a
		// closed pipe or socket); name the real cause. Close stores the flag
		// before closing any backend, so it is visible here.
		if e.closed.Load() {
			reterr = fmt.Errorf("aimes: Submit on closed environment (shard %d enactment raced Close: %v)", sh.id, reterr)
		}
		return nil, reterr
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				j.Cancel("context: " + ctx.Err().Error())
			case <-j.done:
			}
		}()
	}
	return j, nil
}

// enactLocked enacts a job on sh through the shard's backend, which derives
// the strategy (unless pre-derived), assigns the shard-local namespace from
// its own sequence and its randomness from its own streams — for a migrated
// job this is the re-derivation half of the migration-safe handoff,
// recorded as an "em" MIGRATED trace event. It runs under sh's engine
// serialization with sh current for j and j registered in sh.jobs (trace
// records flow through the sink during the Enact call itself).
func (e *Environment) enactLocked(sh *shardEnv, j *Job) error {
	j.mu.Lock()
	from := j.migratedFrom
	j.mu.Unlock()
	res, err := sh.be.Enact(&backend.Descriptor{
		Key:          j.id,
		MigratedFrom: from,
		Descriptor: core.Descriptor{
			Workload: j.w,
			Strategy: j.cfg.Strategy,
			Config:   j.cfg.StrategyConfig,
			Adaptive: j.cfg.Adaptive,
		},
	})
	if err != nil {
		return err
	}
	sh.running++
	j.mu.Lock()
	j.ns = res.Namespace
	j.strategy = res.Strategy
	// Commit the model's prediction for this placement: the report's TTC
	// clock starts at enactment, so the comparable prediction is the fitted
	// pilot queue wait plus the job's own service time — no backlog term.
	// Scored against the observed TTC when the job completes.
	j.predicted = e.model.Predict(sh.id, float64(j.cost)/1000, 0).Total
	j.enacted = true
	j.handoff = false
	reason := j.cancelReason
	j.mu.Unlock()
	j.state.Store(int32(JobRunning))
	if reason != "" {
		// A cancel raced the admission (requested while the job was queued
		// or mid-handoff): honor it now that there is engine state to tear
		// down. We already hold the engine serialization; the backend
		// delivers the completion through the sink before Cancel returns.
		if cerr := sh.be.Cancel(j.id, reason); cerr != nil {
			j.complete(nil, fmt.Errorf("aimes: shard s%d: canceling during admission: %w", sh.id, cerr))
		}
	}
	return nil
}

// backendDead reports whether sh's backend session has failed (worker
// backends only; a local backend never dies). A dead backend's queued jobs
// are replay candidates for the fleet's respawn path and must not be
// enacted — or failed — against the corpse.
func backendDead(be backend.Backend) bool {
	d, ok := be.(interface{ Dead() bool })
	return ok && d.Dead()
}

// respawnPending reports whether sh's worker is dead with restart budget
// remaining — i.e. the death handler will (or is about to) replace it and
// replay the queue, so admission paths should queue rather than enact.
func (e *Environment) respawnPending(sh *shardEnv) bool {
	return e.pool != nil && backendDead(sh.be) && e.pool.CanRespawn(sh.id)
}

// replayableLocked reports whether a queued job on sh should be left in
// the queue despite a failed step: either the backend was already swapped
// for a live replacement (retry the pump), or it is dead with restart
// budget remaining (the death handler will replay the queue). Runs under
// sh's engine serialization.
func (e *Environment) replayableLocked(sh *shardEnv) bool {
	if e.pool == nil {
		return false
	}
	return !backendDead(sh.be) || e.pool.CanRespawn(sh.id)
}

// admitNextLocked enacts queued jobs while the admission window has room. It
// runs under sh's engine serialization; the admitting flag makes it
// reentrancy-safe, because enacting or failing a job can complete other
// jobs, and completions re-enter here.
func (e *Environment) admitNextLocked(sh *shardEnv) {
	if !e.steal || sh.admitting {
		return
	}
	if backendDead(sh.be) {
		// The queue holds replay candidates: the death handler either
		// re-enacts them on a respawned worker (same shard seed) or fails
		// them when the restart budget is spent. Enacting them here would
		// charge them to the corpse.
		return
	}
	sh.admitting = true
	for sh.running < e.windowFor(sh) && len(sh.queue) > 0 {
		j := sh.queue[0]
		sh.queue[0] = nil
		sh.queue = sh.queue[1:]
		if j.migratable {
			e.stealer.NoteQueued(sh.id, -1)
		}
		if err := e.enactLocked(sh, j); err != nil {
			j.complete(nil, err)
		}
	}
	sh.admitting = false
}

// removeQueued unlinks j from sh's admission queue, reporting whether it was
// there. Runs under sh's engine serialization.
func (sh *shardEnv) removeQueued(j *Job) bool {
	for i, q := range sh.queue {
		if q == j {
			sh.queue = append(sh.queue[:i], sh.queue[i+1:]...)
			return true
		}
	}
	return false
}

// migrationCandidate is the lock-free pre-check for self-migration: is
// there any open shard where the cost model predicts enough benefit to pay
// for the handoff? Waiters of queued jobs poll it every pump iteration, so
// it must not take the submission lock on a balanced system — the model's
// fits and the pending counters are all atomic reads.
func (e *Environment) migrationCandidate(origin *shardEnv, cost int64) bool {
	o := float64(origin.pendingCost.Load()) / 1000
	c := float64(cost) / 1000
	for k, sh := range e.shards {
		if sh == origin || e.stealer.Sealed(k) {
			continue
		}
		if e.model.ShouldMigrate(origin.id, k, c, o, float64(sh.pendingCost.Load())/1000) {
			return true
		}
	}
	return false
}

// migrateJob attempts the migration-safe handoff of a still-queued job to a
// less loaded shard. The handoff is lock-ordered and two-phase: the job is
// popped from its origin's queue under the origin's engine lock, then landed
// on the destination under the destination's — no two shard locks are ever
// held together, and the destination's load is reserved under the submission
// lock so concurrent decisions see each other. The destination's backend
// re-derives namespace and randomness when it enacts (see enactLocked); the
// job itself crosses shards as a pure descriptor, which is why the handoff
// routes through any backend — in-process or worker — unchanged. Sealed
// shards are never chosen. forced relaxes the load-balance margin for
// liveness (a job queued behind a wedged admission window must move or
// fail).
func (e *Environment) migrateJob(j *Job, forced bool) bool {
	if !e.steal || !j.migratable {
		return false
	}
	j.mu.Lock()
	hopped := j.hopped
	j.mu.Unlock()
	if hopped {
		return false // one hop per job: stolen work is not re-stolen
	}
	origin := j.sh.Load()
	if !forced && !e.migrationCandidate(origin, j.cost) {
		return false
	}

	// Decide and reserve under the submission lock. The destination is the
	// shard where the model predicts this job would finish soonest; the
	// benefit gate then demands the predicted gain cover the handoff
	// (model.CostModel.ShouldMigrate), so a candidate with a willing
	// destination can still be vetoed — counted separately from rounds that
	// found no destination at all.
	c := float64(j.cost) / 1000
	e.jobMu.Lock()
	best, bestPred := -1, 0.0
	for k, sh := range e.shards {
		if k == origin.id || e.stealer.Sealed(k) {
			continue
		}
		p := e.model.Predict(k, c, float64(sh.pendingCost.Load())/1000).Total
		if best < 0 || p < bestPred {
			best, bestPred = k, p
		}
	}
	if best < 0 {
		e.jobMu.Unlock()
		return false
	}
	dest := e.shards[best]
	if !forced && !e.model.ShouldMigrate(origin.id, dest.id, c,
		float64(origin.pendingCost.Load())/1000, float64(dest.pendingCost.Load())/1000) {
		e.jobMu.Unlock()
		e.stealer.CountVeto()
		return false
	}
	dest.pendingCost.Add(j.cost) // reserve before releasing the lock
	e.jobMu.Unlock()

	// Phase 1: pop from the origin.
	popped := false
	origin.sync(func() {
		if j.sh.Load() != origin || JobState(j.state.Load()) != JobQueued {
			return
		}
		if !origin.removeQueued(j) {
			return // another stealer or a cancel got here first
		}
		e.stealer.NoteQueued(origin.id, -1)
		origin.pendingCost.Add(-j.cost)
		delete(origin.jobs, j.id)
		j.mu.Lock()
		j.handoff = true
		j.hopped = true
		j.migratedFrom = origin.id
		j.mu.Unlock()
		popped = true
	})
	if !popped {
		dest.pendingCost.Add(-j.cost)
		return false
	}

	// Phase 2: land on the destination.
	dest.sync(func() {
		j.sh.Store(dest)
		dest.jobs[j.id] = j
		j.mu.Lock()
		reason := j.cancelReason
		j.mu.Unlock()
		if reason != "" {
			// Canceled mid-handoff: finish here, on the shard that now
			// accounts the job's cost.
			j.complete(core.CanceledReport(j.w), nil)
			return
		}
		if dest.running < e.windowFor(dest) && len(dest.queue) == 0 && !backendDead(dest.be) {
			if err := e.enactLocked(dest, j); err != nil {
				j.complete(nil, err)
			}
			return
		}
		j.mu.Lock()
		j.handoff = false
		j.mu.Unlock()
		dest.queue = append(dest.queue, j)
		e.stealer.NoteQueued(dest.id, 1)
	})
	e.stealer.CountMigration()
	return true
}

// peekMigratable returns a queued migratable job of sh without popping it,
// or nil. Bounded: it gives up rather than blocking when the shard's lock is
// busy.
func (e *Environment) peekMigratable(sh *shardEnv) *Job {
	if !sh.mu.TryLock() {
		return nil
	}
	defer sh.mu.Unlock()
	for _, q := range sh.queue {
		if !q.migratable {
			continue
		}
		q.mu.Lock()
		ok := !q.hopped && q.cancelReason == ""
		q.mu.Unlock()
		if ok {
			return q
		}
	}
	return nil
}

// stealForward is a departing waiter's parting contribution: one bounded
// attempt to hand the busiest queue's oldest migratable job to a less loaded
// shard (often the waiter's own, freshly idle one). It keeps queues moving
// for jobs whose own waiters have not arrived yet.
func (e *Environment) stealForward() {
	if !e.steal {
		return
	}
	v := e.stealer.Victim(-1)
	if v < 0 {
		return
	}
	if j := e.peekMigratable(e.shards[v]); j != nil {
		e.migrateJob(j, false)
	}
}

// helpPump fires one bounded event batch on the most loaded other shard
// whose lock is free — called by a waiter that found its own shard already
// being pumped. Lock-ordered: the caller holds no shard lock, and helpPump
// only ever TryLocks one. The batch may complete that shard's jobs and admit
// from its queue, exactly as its own waiters would.
func (e *Environment) helpPump(own *shardEnv) {
	best, bestCost := -1, int64(0)
	for k, sh := range e.shards {
		if sh == own {
			continue
		}
		if c := sh.pendingCost.Load(); c > bestCost {
			best, bestCost = k, c
		}
	}
	if best < 0 {
		return
	}
	sh := e.shards[best]
	if !sh.mu.TryLock() {
		return
	}
	fired, drained, err := sh.stepBatch()
	if err == nil && drained && sh.running == 0 && len(sh.queue) > 0 {
		e.admitNextLocked(sh)
	}
	sh.mu.Unlock()
	if fired > 0 {
		e.stealer.CountForeignPump()
	}
}

// ID returns the job's sequence number within its environment (1-based,
// across all shards).
func (j *Job) ID() int { return j.id }

// Shard returns the index of the simulation shard currently responsible for
// the job. It is stable once the job is enacted; a queued job on a
// work-stealing environment may migrate once.
func (j *Job) Shard() int { return j.sh.Load().id }

// Migrated reports whether the job was handed to another shard by
// cross-shard work stealing before enactment.
func (j *Job) Migrated() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.migratedFrom >= 0
}

// Namespace returns the job's shard-qualified namespace, "s<shard>-j<seq>"
// with a shard-local sequence number, assigned at enactment ("" while the
// job is still queued). It scopes the job's pilot IDs
// ("pilot.<resource>.s0-j3-1") and its "em"/"unit" entities in the aggregate
// trace ("em.s0-j3", "unit.s0-j3.<name>"). A migrated job's namespace names
// the destination shard.
func (j *Job) Namespace() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ns
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState { return JobState(j.state.Load()) }

// Strategy returns the enacted execution strategy (the zero Strategy while
// the job is still queued — a queued job has not derived one yet).
func (j *Job) Strategy() Strategy {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.strategy
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Report returns the final report, or nil while the job is running.
func (j *Job) Report() *Report {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.report
	default:
		return nil
	}
}

// PredictedTTC returns the completion time the analytical cost model
// predicted for this job at the moment it was enacted on its shard — the
// fitted pilot queue wait plus the job's service time at the shard's fitted
// drain rate — or 0 while the job is still queued. Compare with
// Report().TTC to score the model (the fidelity harness and the scenario
// `model` assertion do exactly that).
func (j *Job) PredictedTTC() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return time.Duration(j.predicted * float64(time.Second))
}

// Err returns the terminal error for failed jobs, or nil.
func (j *Job) Err() error {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.err
	default:
		return nil
	}
}

// Events returns the job's live event stream: every pilot, unit and strategy
// transition, in order, closed when the job ends. The channel is buffered;
// if a consumer falls behind, excess events are dropped (EventsDropped) so
// the simulation never blocks on a slow reader.
func (j *Job) Events() <-chan Event { return j.events }

// EventsDropped reports how many events were dropped because the Events
// buffer was full.
func (j *Job) EventsDropped() int64 { return j.dropped.Load() }

// Wait blocks until the job completes and returns its report. On a
// virtual-time environment the waiting goroutine pumps the job's shard
// (whoever waits, advances that shard's time — concurrent waiters interleave
// on the same shard and run in parallel across shards); on a wall-clock
// environment it blocks while timers fire. On a work-stealing environment
// the waiter additionally migrates its own still-queued job to a less loaded
// shard, helps pump the busiest shard while its own is locked, and on its
// way out hands one queued job from the busiest queue to an idle shard.
//
// ctx bounds the wait only: when it expires, Wait returns ctx.Err() and the
// job keeps running (use Cancel, or a Submit ctx, to stop the job itself).
// Canceled jobs return their report with a nil error; inspect Job.State and
// Report.UnitsCanceled to distinguish them.
func (j *Job) Wait(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e := j.env
	for {
		select {
		case <-j.done:
			e.stealForward()
			j.mu.Lock()
			defer j.mu.Unlock()
			return j.report, j.err
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		sh := j.sh.Load()
		if !sh.steppable {
			select {
			case <-j.done:
				j.mu.Lock()
				defer j.mu.Unlock()
				return j.report, j.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if e.steal && JobState(j.state.Load()) == JobQueued {
			if e.migrateJob(j, false) {
				continue // pump the new shard next iteration
			}
		}
		if sh.pump(j) {
			// Stalled: the shard drained with our migratable job still
			// queued behind a wedged admission window. Force it onto any
			// open shard; if every other shard is sealed, it can never start.
			if !e.migrateJob(j, true) {
				j.failStalled(sh)
			}
		}
	}
}

// failStalled ends a queued job that can never start: its shard's engine
// drained with the admission window wedged, and no open shard can take it.
// The no-op guards make it safe against racing migrations and cancels.
func (j *Job) failStalled(sh *shardEnv) {
	e := j.env
	sh.sync(func() {
		if j.sh.Load() != sh || JobState(j.state.Load()) != JobQueued {
			return
		}
		if !sh.removeQueued(j) {
			return // an in-flight handoff or cancel owns the job now
		}
		if j.migratable {
			e.stealer.NoteQueued(sh.id, -1)
		}
		j.complete(nil, fmt.Errorf("aimes: shard s%d drained with the job still queued behind %d wedged jobs and no open shard to migrate to", sh.id, sh.running))
	})
}

// Cancel aborts a job: a queued job completes immediately with every unit
// accounted as canceled; a running job has its non-final units canceled and
// its pilots torn down, completing in state JobCanceled with a report
// accounting the canceled units. Canceling a finished job is a no-op.
func (j *Job) Cancel(reason string) {
	if reason == "" {
		reason = "canceled"
	}
	for {
		if j.finished() {
			return
		}
		sh := j.sh.Load()
		handled := false
		sh.sync(func() {
			if j.sh.Load() != sh {
				return // migrated under our feet; retry on the new shard
			}
			handled = j.cancelLocked(sh, reason)
		})
		if handled {
			return
		}
		runtime.Gosched()
	}
}

// cancelLocked runs under sh's engine serialization. It reports whether the
// cancel was delivered — directly, or left for an in-flight handoff to honor
// on landing; false means the job moved to another shard and the caller must
// retry there.
func (j *Job) cancelLocked(sh *shardEnv, reason string) bool {
	if j.finished() {
		return true
	}
	j.mu.Lock()
	if j.cancelReason == "" {
		j.cancelReason = reason
	}
	owner := j.sh.Load()
	enacted, handoff := j.enacted, j.handoff
	j.mu.Unlock()
	if owner != sh {
		// The job landed elsewhere after the caller captured its shard; the
		// reason is recorded, but tearing down engine state must happen
		// under the owner's serialization.
		return false
	}
	switch {
	case enacted:
		// Canceling the last unit fires the backend's completion event,
		// which the sink turns into the job's canceled-units report before
		// Cancel returns.
		if err := sh.be.Cancel(j.id, reason); err != nil && !j.finished() {
			j.complete(nil, fmt.Errorf("aimes: shard s%d: canceling: %w", sh.id, err))
		}
		return true
	case handoff:
		// Popped from its origin, not yet landed: the migrator observes the
		// reason under the destination's lock and completes the job there.
		return true
	default:
		// Still queued on sh: unlink and finish without ever enacting.
		if sh.removeQueued(j) && j.migratable {
			j.env.stealer.NoteQueued(sh.id, -1)
		}
		j.complete(core.CanceledReport(j.w), nil)
		return true
	}
}

// ownedByLocked reports whether sh is currently responsible for j. The
// caller holds sh's engine lock; the shard pointer and handoff flag are
// re-read under j.mu, so a handoff that moved the job after the caller
// captured its shard cannot be missed: phase 1 (pop, handoff=true) runs
// under the origin's lock — excluded while the caller holds it — and
// phase 2's landing publishes the new shard pointer before clearing the
// flag. Without this check a waiter pumping the drained origin could
// misattribute the origin's empty engine to a job that just enacted on its
// destination, and fail or cancel it against the wrong engine.
func (j *Job) ownedByLocked(sh *shardEnv) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sh.Load() == sh && !j.handoff
}

// finished reports terminal state without blocking.
func (j *Job) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// publish streams one trace record to the job's event channel, dropping
// rather than blocking when the consumer lags. It runs under the engine's
// callback serialization (the backend sink).
func (j *Job) publish(r trace.Record) {
	if j.eventsClosed.Load() {
		return
	}
	ev := Event{Job: j.id, Time: r.Time.Duration(), Entity: r.Entity,
		State: r.State, Detail: r.Detail}
	select {
	case j.events <- ev:
	default:
		j.dropped.Add(1)
	}
}

// complete records the terminal outcome exactly once and releases waiters
// and event consumers. Every completion path — backend completion events,
// pump drains, cancels, handoff landings, worker deaths — runs under the
// current shard's engine serialization, which is what makes the admission
// bookkeeping (running, queue, jobs) safe here.
func (j *Job) complete(r *Report, err error) {
	j.mu.Lock()
	if j.completed {
		j.mu.Unlock()
		return
	}
	j.completed = true
	j.report, j.err = r, err
	st := JobDone
	switch {
	case j.cancelReason != "":
		st = JobCanceled
	case err != nil:
		st = JobFailed
	}
	j.state.Store(int32(st))
	enacted := j.enacted
	j.mu.Unlock()
	sh := j.sh.Load()
	delete(sh.jobs, j.id)
	sh.pendingCost.Add(-j.cost)
	if st == JobDone {
		// Completed work feeds the observed-throughput side of weighted
		// placement; canceled and failed jobs tell us nothing about rate.
		sh.doneCost.Add(j.cost)
		sh.doneJobs.Add(1)
		if r != nil {
			// Feed the analytical twin: the job's measured wait and
			// completion refit the shard's drain rate and queue wait, and
			// the events fired since the last completion that saw the
			// counter move refit its per-job event demand. Events fire in
			// batches, so the delta stays 0 for completions within one
			// batch and then covers them all at once — EventsJobs tells
			// the fit how many. (lastDoneEvents/lastDoneJobs are guarded
			// by the shard serialization every completion path runs
			// under.)
			var delta, jobs int64
			if fired := sh.eventsFired.Load(); fired > sh.lastDoneEvents {
				delta = fired - sh.lastDoneEvents
				jobs = sh.doneJobs.Load() - sh.lastDoneJobs
				sh.lastDoneEvents = fired
				sh.lastDoneJobs = sh.doneJobs.Load()
			}
			j.mu.Lock()
			predicted := j.predicted
			j.mu.Unlock()
			j.env.model.Observe(model.Observation{
				Shard:      sh.id,
				Cost:       float64(j.cost) / 1000,
				Wait:       r.Tw.Seconds(),
				TTC:        r.TTC.Seconds(),
				Events:     delta,
				EventsJobs: jobs,
				Predicted:  predicted,
			})
		}
	}
	if enacted {
		sh.running--
		j.env.admitNextLocked(sh)
	}
	j.eventsClosed.Store(true)
	close(j.events)
	close(j.done)
}

// pumpBatch bounds how many events one Wait iteration fires on a local
// shard while holding the shard lock, so concurrent waiters, submitters and
// cancelers of the same shard interleave promptly.
const pumpBatch = 64

// workerPumpBatch is the pump granularity for worker shards, where every
// batch is one wire round trip (encode, two pipe or socket crossings,
// decode) — protocol overhead is per batch, so a larger batch is what
// amortizes it. Coarser interleaving is the price: admission from the
// stealing queue is batch-granular over the wire (the documented worker
// caveat), and one waiter holds the shard lock for a round trip's worth of
// events.
const workerPumpBatch = 512

// pump advances virtual time on behalf of a waiting job: whoever waits,
// steps — and only this job's shard, so waiters on different shards fire
// events truly in parallel. All access to one shard's backend runs under its
// mutex; concurrent waiters of the same shard take turns firing batches, and
// any waiter's step may complete any tenant's job on that shard. It reports
// whether the job is stalled: the engine drained with the (migratable) job
// still queued, so the waiter must migrate it or give up.
func (sh *shardEnv) pump(j *Job) (stalled bool) {
	e := j.env
	if e.steal {
		if !sh.mu.TryLock() {
			// Our shard is already being pumped; contribute a bounded batch
			// to the most loaded shard instead of just blocking.
			e.helpPump(sh)
			sh.mu.Lock()
		}
	} else {
		sh.mu.Lock()
	}
	defer sh.mu.Unlock()
	if !j.ownedByLocked(sh) {
		return false // migrated (or mid-handoff) while we waited for the lock
	}
	if j.finished() {
		return false
	}
	// The non-blocking query half of the pump seam: a quiescent engine is
	// already drained-but-blocked, so the waiter reaches the verdict below —
	// admit, migrate, or fail — without going through a no-op step batch.
	// (The worker backend answers from cached drain state: authoritative
	// when false, "ask" when true.)
	drained := sh.quiet != nil && !sh.quiet.Runnable()
	if !drained {
		var err error
		_, drained, err = sh.stepBatch()
		if err != nil {
			// The backend is gone (a worker crash mid-step). A still-queued
			// job is a pure descriptor: when the fleet can respawn the
			// worker — or already has — leave it queued for replay on the
			// replacement (same shard seed) and let the next Wait iteration
			// pump the fresh backend. Otherwise fail this job with the
			// cause — unlinking it from the admission queue first if it
			// never enacted, so the dead shard's stealable-work count
			// doesn't stay positive forever. The death handler fails the
			// shard's other jobs; their waiters observe it on their own
			// next pump.
			if JobState(j.state.Load()) == JobQueued {
				if e.replayableLocked(sh) {
					return false
				}
				if sh.removeQueued(j) && j.migratable {
					e.stealer.NoteQueued(sh.id, -1)
				}
			}
			j.complete(nil, fmt.Errorf("aimes: shard s%d: %w", sh.id, err))
			return false
		}
	}
	if !drained || j.finished() {
		return false
	}
	if !j.ownedByLocked(sh) {
		// A handoff completed while we were firing events (its phase 1 ran
		// before we took the lock): the drain verdict below would judge the
		// wrong shard. The next Wait iteration pumps the job's new home.
		return false
	}
	// The shard's engine drained with this job incomplete.
	if e.steal && len(sh.queue) > 0 && sh.running == 0 {
		// Quiet engine with a free window: admit queued jobs (ours may be
		// among them) and keep pumping.
		e.admitNextLocked(sh)
		return false
	}
	if JobState(j.state.Load()) == JobQueued {
		// Queued behind a wedged window: the running jobs hold every
		// admission slot but nothing scheduled can make them progress.
		if !j.migratable {
			j.complete(nil, fmt.Errorf("aimes: shard s%d drained with the job still queued behind %d wedged jobs", sh.id, sh.running))
			return false
		}
		return true
	}
	// Nothing scheduled can make this enacted job progress: fail it with the
	// backend's diagnostic state summary. Other live jobs on the shard fail
	// the same way when their waiters observe the drain; new submissions
	// refill the queue first.
	j.complete(nil, sh.be.Incomplete(j.id))
	return false
}

// stepBatch fires up to one batch of events on the shard's backend (the
// shard's own granularity: pumpBatch locally, workerPumpBatch over the
// wire), reporting how many fired and whether the event queue drained, and
// accounts the wall time spent firing toward the shard's
// observed-throughput signal (for a worker shard that includes the wire
// round trip — honest accounting, since that is the real drain rate the
// environment gets from it).
func (sh *shardEnv) stepBatch() (fired int, drained bool, err error) {
	start := time.Now()
	defer func() {
		sh.busyNanos.Add(time.Since(start).Nanoseconds())
		sh.eventsFired.Add(int64(fired))
	}()
	return sh.be.Step(sh.batch)
}
