// Concurrency battery for cross-shard work stealing: adversarial-placement
// stress under the race detector, the determinism regression matrix for the
// per-shard contract with stealing on and off, migration-handoff semantics
// (namespace re-derivation, MIGRATED trace events, sealing), queued-job
// cancellation, and the atomic pick-plus-reserve placement fix.
package aimes_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aimes"
	"aimes/internal/trace"
)

// stealCfg is the strategy used by the stealing tests.
var stealCfg = aimes.StrategyConfig{
	Binding: aimes.LateBinding, Scheduler: aimes.SchedBackfill, Pilots: 2,
}

// skewedJob pins a migratable job to shard 0 — the adversarial placement
// every stealing test starts from.
func skewedJob() aimes.JobConfig {
	return aimes.JobConfig{
		StrategyConfig: stealCfg,
		Placement:      aimes.PlacePinned, Shard: 0,
		Migrate: aimes.MigrateAllow,
	}
}

// waitAllDeadline waits for every job with a watchdog, failing the test
// instead of letting a stealing deadlock hang the suite forever.
func waitAllDeadline(t *testing.T, jobs []*aimes.Job, d time.Duration) []*aimes.Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	reports := make([]*aimes.Report, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j *aimes.Job) {
			defer wg.Done()
			r, err := j.Wait(ctx)
			if err != nil {
				t.Errorf("job %d (state %v): %v", i, j.State(), err)
				return
			}
			reports[i] = r
		}(i, j)
	}
	wg.Wait()
	return reports
}

// TestWorkStealingStressRace is the adversarial stress point: 200 jobs all
// pinned to shard 0 of a 4-shard environment (but migratable), with
// mid-flight cancels racing the waiters and the stealing machinery. Every
// job must reach a terminal state with no deadlock, and the steal counter
// must show that migration actually carried the load.
func TestWorkStealingStressRace(t *testing.T) {
	const nShards, nJobs, nTasks = 4, 200, 8
	env, err := aimes.NewEnv(aimes.WithSeed(9001), aimes.WithShards(nShards), aimes.WithWorkStealing())
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*aimes.Job, nJobs)
	for i := range jobs {
		w, err := aimes.GenerateWorkload(aimes.BagOfTasks(nTasks, aimes.UniformDuration()), int64(13000+i))
		if err != nil {
			t.Fatal(err)
		}
		if jobs[i], err = env.Submit(context.Background(), w, skewedJob()); err != nil {
			t.Fatal(err)
		}
	}

	// Cancel every 7th job from a racing goroutine while waiters pump,
	// migrate and help-pump: cancels land on queued, in-handoff and enacted
	// jobs alike.
	canceled := map[int]bool{}
	var cwg sync.WaitGroup
	for i := 0; i < nJobs; i += 7 {
		canceled[i] = true
		cwg.Add(1)
		go func(j *aimes.Job) {
			defer cwg.Done()
			j.Cancel("mid-flight cancel")
		}(jobs[i])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var wwg sync.WaitGroup
	errs := make([]error, nJobs)
	reports := make([]*aimes.Report, nJobs)
	for i, j := range jobs {
		wwg.Add(1)
		go func(i int, j *aimes.Job) {
			defer wwg.Done()
			reports[i], errs[i] = j.Wait(ctx)
		}(i, j)
	}
	cwg.Wait()
	wwg.Wait()

	for i, j := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d (state %v): %v", i, j.State(), errs[i])
		}
		if !j.State().Final() {
			t.Fatalf("job %d not terminal: %v", i, j.State())
		}
		if reports[i] == nil {
			t.Fatalf("job %d: no report", i)
		}
		if !canceled[i] {
			if j.State() != aimes.JobDone {
				t.Fatalf("job %d state %v, want done", i, j.State())
			}
			if reports[i].UnitsDone != nTasks {
				t.Fatalf("job %d: %d units done, want %d", i, reports[i].UnitsDone, nTasks)
			}
		} else if j.State() != aimes.JobCanceled && reports[i].UnitsDone != nTasks {
			// A cancel may lose the race with completion; anything else must
			// be a fully canceled or fully done job.
			t.Fatalf("canceled job %d: state %v, %d done %d canceled",
				i, j.State(), reports[i].UnitsDone, reports[i].UnitsCanceled)
		}
	}
	stats := env.StealStats()
	if stats.Migrations == 0 {
		t.Fatal("adversarial placement completed without a single migration")
	}
	t.Logf("steal stats: %d migrations, %d foreign pumps", stats.Migrations, stats.ForeignPumps)

	// The skew must actually have been spread: some job ran off shard 0.
	moved := 0
	for _, j := range jobs {
		if j.Shard() != 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("every job still reports shard 0")
	}
}

// TestDeterminismMatrix is the determinism regression matrix: a pinned
// tenant on its own shard must produce byte-identical outcomes across runs —
// with stealing off and on, with varying amounts of migratable background
// traffic, and in particular while other shards' jobs migrate. The pinned
// tenant seals its shard, so no migrant can ever perturb it.
func TestDeterminismMatrix(t *testing.T) {
	const nShards, tenantShard = 4, 2
	type cell struct {
		steal       bool
		noise       int
		tenantJobs  int
		wantMigrate bool
	}
	cells := []cell{
		{steal: false, noise: 0, tenantJobs: 3},
		{steal: false, noise: 8, tenantJobs: 3},
		{steal: true, noise: 0, tenantJobs: 3},
		{steal: true, noise: 8, tenantJobs: 3, wantMigrate: true},
		{steal: true, noise: 0, tenantJobs: 6},
		{steal: true, noise: 12, tenantJobs: 6, wantMigrate: true},
	}
	type outcome struct {
		sig []string
	}
	run := func(t *testing.T, c cell) outcome {
		opts := []aimes.Option{aimes.WithSeed(4242), aimes.WithShards(nShards)}
		if c.steal {
			opts = append(opts, aimes.WithWorkStealing())
		}
		env, err := aimes.NewEnv(opts...)
		if err != nil {
			t.Fatal(err)
		}
		// The pinned tenant submits first: its shard is sealed from the
		// start, so nothing that happens later can reach it.
		var tenant []*aimes.Job
		for i := 0; i < c.tenantJobs; i++ {
			w, err := aimes.GenerateWorkload(aimes.BagOfTasks(6, aimes.UniformDuration()), int64(600+i))
			if err != nil {
				t.Fatal(err)
			}
			j, err := env.Submit(context.Background(), w, aimes.JobConfig{
				StrategyConfig: stealCfg,
				Placement:      aimes.PlacePinned, Shard: tenantShard,
			})
			if err != nil {
				t.Fatal(err)
			}
			tenant = append(tenant, j)
		}
		// Background traffic: migratable jobs stacked adversarially on
		// shard 0, free to migrate anywhere but the sealed tenant shard.
		// Heavy enough (16 tasks each) that the queue behind the admission
		// window cannot drain before the queued waiters' first migrate
		// check runs, so cells expecting migration see it reliably.
		var noise []*aimes.Job
		for i := 0; i < c.noise; i++ {
			w, err := aimes.GenerateWorkload(aimes.BagOfTasks(16, aimes.UniformDuration()), int64(9100+17*i))
			if err != nil {
				t.Fatal(err)
			}
			j, err := env.Submit(context.Background(), w, skewedJob())
			if err != nil {
				t.Fatal(err)
			}
			noise = append(noise, j)
		}
		if c.wantMigrate {
			// Drive one migration deterministically before the waiter storm:
			// the last noise job is necessarily queued (the window filled
			// long before it), nothing is pumping yet, and the unsealed
			// shards are empty — so its waiter's first iteration must hand
			// it off.
			probe := noise[len(noise)-1]
			if probe.State() != aimes.JobQueued {
				t.Fatalf("probe job state %v, want queued", probe.State())
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			if _, err := probe.Wait(ctx); err != nil {
				t.Fatalf("probe wait: %v", err)
			}
			cancel()
		}
		waitAllDeadline(t, append(append([]*aimes.Job{}, noise...), tenant...), 120*time.Second)
		for _, j := range tenant {
			if got := j.Shard(); got != tenantShard {
				t.Fatalf("pinned tenant job ended on shard %d", got)
			}
		}
		if c.wantMigrate && env.StealStats().Migrations == 0 {
			t.Fatal("matrix cell expected background migrations, saw none")
		}
		var o outcome
		for _, j := range tenant {
			r := j.Report()
			o.sig = append(o.sig, fmt.Sprintf("%s|%v|%v|%v|%v|%d|%v",
				j.Namespace(), r.TTC, r.Tw, r.Tx, r.Ts, r.UnitsDone, sortedWaits(r)))
		}
		return o
	}
	baseline := map[int][]string{} // tenantJobs -> signature with steal off, noise 0
	for _, c := range cells {
		name := fmt.Sprintf("steal=%v/noise=%d/tenant=%d", c.steal, c.noise, c.tenantJobs)
		t.Run(name, func(t *testing.T) {
			a := run(t, c)
			b := run(t, c)
			for i := range a.sig {
				if a.sig[i] != b.sig[i] {
					t.Fatalf("pinned tenant job %d diverged across identical runs:\n  %s\n  %s", i, a.sig[i], b.sig[i])
				}
			}
			// Across cells with the same tenant size and a window-sized
			// tenant, the sealed shard must not even notice the mode or the
			// noise: compare to the quietest cell.
			if c.tenantJobs == 3 {
				if prev, ok := baseline[c.tenantJobs]; ok {
					for i := range a.sig {
						if a.sig[i] != prev[i] {
							t.Fatalf("pinned tenant job %d differs from the no-noise baseline:\n  %s\n  %s", i, a.sig[i], prev[i])
						}
					}
				} else {
					baseline[c.tenantJobs] = a.sig
				}
			}
		})
	}
}

// sortedWaits renders PilotWaits deterministically for signature comparison.
func sortedWaits(r *aimes.Report) string {
	keys := make([]string, 0, len(r.PilotWaits))
	for k := range r.PilotWaits {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v;", k, r.PilotWaits[k])
	}
	return b.String()
}

// TestMigrationHandoffSemantics pins more migratable jobs to shard 0 than
// the admission window holds and checks the handoff contract end to end:
// migrated jobs re-derive their namespace on the destination shard, record
// an "em" MIGRATED trace event naming the origin, show up in the
// destination's recorder, and still complete correctly.
func TestMigrationHandoffSemantics(t *testing.T) {
	const nShards, nJobs, nTasks = 2, 12, 6
	env, err := aimes.NewEnv(aimes.WithSeed(321), aimes.WithShards(nShards), aimes.WithWorkStealing())
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*aimes.Job, nJobs)
	for i := range jobs {
		w, err := aimes.GenerateWorkload(aimes.BagOfTasks(nTasks, aimes.UniformDuration()), int64(500+i))
		if err != nil {
			t.Fatal(err)
		}
		if jobs[i], err = env.Submit(context.Background(), w, skewedJob()); err != nil {
			t.Fatal(err)
		}
	}
	// Wait on the (necessarily queued) last job first: with nothing pumping
	// yet and shard 1 empty, its waiter's first iteration must migrate it —
	// so the handoff assertions below are deterministic, not scheduling luck.
	if jobs[nJobs-1].State() != aimes.JobQueued {
		t.Fatalf("tail job state %v, want queued", jobs[nJobs-1].State())
	}
	if _, err := jobs[nJobs-1].Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if jobs[nJobs-1].Shard() == 0 {
		t.Fatal("probe job did not migrate off the skewed shard")
	}
	reports := waitAllDeadline(t, jobs, 60*time.Second)

	migrated := 0
	for i, j := range jobs {
		if reports[i] == nil {
			t.Fatalf("job %d: no report", i)
		}
		if reports[i].UnitsDone != nTasks {
			t.Fatalf("job %d: %d units done", i, reports[i].UnitsDone)
		}
		ns := j.Namespace()
		wantPrefix := fmt.Sprintf("s%d-", j.Shard())
		if !strings.HasPrefix(ns, wantPrefix) {
			t.Fatalf("job %d namespace %q does not match its shard %d", i, ns, j.Shard())
		}
		for id := range reports[i].PilotWaits {
			if !strings.Contains(id, "."+ns+"-") {
				t.Fatalf("job %d pilot %q lacks namespace %q", i, id, ns)
			}
		}
		if j.Shard() != 0 {
			migrated++
			// The migration must be visible in the destination shard's trace
			// as an em MIGRATED record naming the origin.
			rec := env.ShardRecorder(j.Shard())
			found := false
			for _, r := range rec.ByEntity("em." + ns) {
				if r.State == trace.StateMigrated {
					if r.Detail != "from s0" {
						t.Fatalf("job %d MIGRATED detail %q, want \"from s0\"", i, r.Detail)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("job %d migrated to shard %d without an em MIGRATED record", i, j.Shard())
			}
		}
	}
	if migrated == 0 {
		t.Fatal("no job migrated off the skewed shard")
	}
	if got := env.StealStats().Migrations; got < int64(migrated) {
		t.Fatalf("steal counter %d below observed migrations %d", got, migrated)
	}
	// Aggregate trace carries the MIGRATED records too.
	if len(env.Recorder().ByState(trace.StateMigrated)) == 0 {
		t.Fatal("aggregate trace has no MIGRATED records")
	}
}

// TestPinnedSealingBlocksMigrants checks both halves of the pinning
// contract: pinned non-migratable jobs never move even under extreme skew,
// and the shards they pin become sealed — with every other shard sealed,
// migratable jobs have nowhere to go and run where they were placed.
func TestPinnedSealingBlocksMigrants(t *testing.T) {
	const nShards = 2
	env, err := aimes.NewEnv(aimes.WithSeed(77), aimes.WithShards(nShards), aimes.WithWorkStealing())
	if err != nil {
		t.Fatal(err)
	}
	// Seal shard 1 with a pinned non-migratable job.
	sealW, err := aimes.GenerateWorkload(aimes.BagOfTasks(4, aimes.UniformDuration()), 1)
	if err != nil {
		t.Fatal(err)
	}
	sealJob, err := env.Submit(context.Background(), sealW, aimes.JobConfig{
		StrategyConfig: stealCfg, Placement: aimes.PlacePinned, Shard: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stack shard 0 well past the admission window with pinned
	// non-migratable jobs plus migratable ones; the only other shard is
	// sealed, so nothing may move.
	var jobs []*aimes.Job
	for i := 0; i < 8; i++ {
		w, err := aimes.GenerateWorkload(aimes.BagOfTasks(4, aimes.UniformDuration()), int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		cfg := aimes.JobConfig{
			StrategyConfig: stealCfg, Placement: aimes.PlacePinned, Shard: 0,
		}
		if i%2 == 1 {
			cfg.Migrate = aimes.MigrateAllow
		}
		j, err := env.Submit(context.Background(), w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	waitAllDeadline(t, append(jobs, sealJob), 60*time.Second)
	for i, j := range jobs {
		if j.Shard() != 0 {
			t.Fatalf("job %d ended on shard %d despite sealing", i, j.Shard())
		}
	}
	if sealJob.Shard() != 1 {
		t.Fatalf("sealing job moved to shard %d", sealJob.Shard())
	}
	if got := env.StealStats().Migrations; got != 0 {
		t.Fatalf("%d migrations despite every destination sealed", got)
	}
}

// TestQueuedJobCancel cancels jobs that are still queued behind the
// admission window: they must complete immediately in JobCanceled with every
// unit accounted as canceled and without ever enacting (empty namespace, no
// strategy), while the rest of the queue drains normally.
func TestQueuedJobCancel(t *testing.T) {
	const nShards = 2
	env, err := aimes.NewEnv(aimes.WithSeed(55), aimes.WithShards(nShards), aimes.WithWorkStealing())
	if err != nil {
		t.Fatal(err)
	}
	// Seal shard 1 so nothing migrates and the queue on shard 0 stays put.
	sealW, err := aimes.GenerateWorkload(aimes.BagOfTasks(2, aimes.UniformDuration()), 3)
	if err != nil {
		t.Fatal(err)
	}
	sealJob, err := env.Submit(context.Background(), sealW, aimes.JobConfig{
		StrategyConfig: stealCfg, Placement: aimes.PlacePinned, Shard: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const nJobs, nTasks = 10, 5
	jobs := make([]*aimes.Job, nJobs)
	for i := range jobs {
		w, err := aimes.GenerateWorkload(aimes.BagOfTasks(nTasks, aimes.UniformDuration()), int64(800+i))
		if err != nil {
			t.Fatal(err)
		}
		if jobs[i], err = env.Submit(context.Background(), w, skewedJob()); err != nil {
			t.Fatal(err)
		}
	}
	// The tail of the queue is still un-enacted.
	victim := jobs[nJobs-1]
	if victim.State() != aimes.JobQueued {
		t.Fatalf("tail job state %v, want queued", victim.State())
	}
	if victim.Namespace() != "" {
		t.Fatalf("queued job already has namespace %q", victim.Namespace())
	}
	victim.Cancel("changed my mind")
	r, err := victim.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if victim.State() != aimes.JobCanceled {
		t.Fatalf("canceled queued job state %v", victim.State())
	}
	if r.UnitsCanceled != nTasks || r.UnitsDone != 0 || r.TTC != 0 {
		t.Fatalf("queued-cancel report: %d canceled, %d done, TTC %v", r.UnitsCanceled, r.UnitsDone, r.TTC)
	}
	if victim.Namespace() != "" {
		t.Fatal("canceled queued job acquired a namespace")
	}
	waitAllDeadline(t, append(jobs[:nJobs-1], sealJob), 60*time.Second)
	for i, j := range jobs[:nJobs-1] {
		if j.State() != aimes.JobDone {
			t.Fatalf("job %d state %v", i, j.State())
		}
	}
}

// TestStealForwardDrainsWaiterlessQueues submits queued jobs nobody is
// waiting on; a waiter of another shard's job must, on its way out, hand one
// of them to an idle shard so the queue keeps moving without its own waiters.
func TestStealForwardDrainsWaiterlessQueues(t *testing.T) {
	const nShards = 2
	env, err := aimes.NewEnv(aimes.WithSeed(66), aimes.WithShards(nShards), aimes.WithWorkStealing())
	if err != nil {
		t.Fatal(err)
	}
	// Fill shard 0's window and queue without waiting on any of it.
	var skewed []*aimes.Job
	for i := 0; i < 7; i++ {
		w, err := aimes.GenerateWorkload(aimes.BagOfTasks(4, aimes.UniformDuration()), int64(300+i))
		if err != nil {
			t.Fatal(err)
		}
		j, err := env.Submit(context.Background(), w, skewedJob())
		if err != nil {
			t.Fatal(err)
		}
		skewed = append(skewed, j)
	}
	// A tenant on shard 1 runs and completes; its departing waiter steals
	// forward from shard 0's queue.
	w, err := aimes.GenerateWorkload(aimes.BagOfTasks(4, aimes.UniformDuration()), 9)
	if err != nil {
		t.Fatal(err)
	}
	j, err := env.Submit(context.Background(), w, aimes.JobConfig{
		StrategyConfig: stealCfg, Placement: aimes.PlacePinned, Shard: 1, Migrate: aimes.MigrateAllow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := env.StealStats().Migrations; got == 0 {
		t.Fatal("departing waiter did not steal forward from the waiterless queue")
	}
	waitAllDeadline(t, skewed, 60*time.Second)
}

// TestWorkStealingValidation covers the option's rejection and inert paths.
func TestWorkStealingValidation(t *testing.T) {
	if _, err := aimes.NewEnv(aimes.WithRealTime(), aimes.WithWorkStealing()); err == nil {
		t.Fatal("WithRealTime + WithWorkStealing accepted")
	}
	env, err := aimes.NewEnv(aimes.WithSeed(1), aimes.WithShards(1), aimes.WithWorkStealing())
	if err != nil {
		t.Fatalf("single-shard WithWorkStealing rejected: %v", err)
	}
	// Inert: a single shard has no peers, so jobs enact synchronously.
	w, err := aimes.GenerateWorkload(aimes.BagOfTasks(4, aimes.UniformDuration()), 2)
	if err != nil {
		t.Fatal(err)
	}
	j, err := env.Submit(context.Background(), w, aimes.JobConfig{StrategyConfig: stealCfg})
	if err != nil {
		t.Fatal(err)
	}
	if j.State() != aimes.JobRunning {
		t.Fatalf("single-shard stealing env queued a job: %v", j.State())
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := env.StealStats(); s.Migrations != 0 || s.ForeignPumps != 0 {
		t.Fatalf("inert environment recorded steal activity: %+v", s)
	}
	// Unknown migrate policy is rejected before placement.
	env2, err := aimes.NewEnv(aimes.WithSeed(2), aimes.WithShards(2), aimes.WithWorkStealing())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env2.Submit(context.Background(), w, aimes.JobConfig{
		StrategyConfig: stealCfg, Migrate: aimes.MigratePolicy(9),
	}); err == nil || !strings.Contains(err.Error(), "migrate policy") {
		t.Fatalf("unknown migrate policy error = %v", err)
	}
}

// TestConcurrentLeastLoadedReservation is the regression test for the
// stale-load window: placement reserves the job's expected cost under the
// submission lock, so racing Submits can no longer all observe the same
// "least loaded" shard. Equal-cost jobs submitted from many goroutines must
// spread exactly evenly before anything is pumped.
func TestConcurrentLeastLoadedReservation(t *testing.T) {
	const nShards, nJobs = 4, 40
	env, err := aimes.NewEnv(aimes.WithSeed(88), aimes.WithShards(nShards))
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*aimes.Job, nJobs)
	var wg sync.WaitGroup
	for i := 0; i < nJobs; i++ {
		w, err := aimes.GenerateWorkload(aimes.BagOfTasks(8, aimes.UniformDuration()), int64(2000+i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, w *aimes.Workload) {
			defer wg.Done()
			j, err := env.Submit(context.Background(), w, aimes.JobConfig{
				StrategyConfig: stealCfg, Placement: aimes.PlaceLeastLoaded,
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i, w)
	}
	wg.Wait()
	perShard := make([]int, nShards)
	for i, j := range jobs {
		if j == nil {
			t.Fatalf("job %d missing", i)
		}
		perShard[j.Shard()]++
	}
	for k, n := range perShard {
		if n != nJobs/nShards {
			t.Fatalf("shard %d got %d concurrent least-loaded jobs, want %d (distribution %v)",
				k, n, nJobs/nShards, perShard)
		}
	}
	waitAllDeadline(t, jobs, 60*time.Second)
}
