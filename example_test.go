package aimes_test

import (
	"fmt"
	"log"

	"aimes"
)

// Example reproduces the README quickstart: a 128-task bag of tasks under
// the paper's best strategy (late binding, backfill, three pilots) on the
// simulated five-resource testbed.
func Example() {
	env, err := aimes.NewSimulatedEnvironment(aimes.EnvConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	app := aimes.BagOfTasks(128, aimes.UniformDuration())
	report, err := env.RunApp(app, aimes.StrategyConfig{
		Binding:   aimes.LateBinding,
		Scheduler: aimes.SchedBackfill,
		Pilots:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d units done on %d pilots\n", report.UnitsDone, report.PilotsActivated)
	fmt.Printf("TTC %.0fs with Tw %.0fs\n", report.TTC.Seconds(), report.Tw.Seconds())
	// Output:
	// 128 units done on 3 pilots
	// TTC 1405s with Tw 78s
}

// ExampleEnvironment_Derive shows strategy derivation without enactment —
// the five decisions of the paper's Table I made explicit.
func ExampleEnvironment_Derive() {
	env, err := aimes.NewSimulatedEnvironment(aimes.EnvConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	w, err := aimes.GenerateWorkload(aimes.BagOfTasks(2048, aimes.UniformDuration()), 7)
	if err != nil {
		log.Fatal(err)
	}
	s, err := env.Derive(w, aimes.StrategyConfig{
		Binding:        aimes.LateBinding,
		Scheduler:      aimes.SchedBackfill,
		Pilots:         3,
		Selection:      aimes.SelectFixed,
		FixedResources: []string{"stampede", "comet", "hopper"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d pilots × %d cores on %v\n", s.Pilots, s.PilotCores, s.Resources)
	// Output:
	// 3 pilots × 683 cores on [stampede comet hopper]
}

// ExampleBundle_Match exercises the discovery interface's requirement
// language over the default testbed.
func ExampleBundle_Match() {
	env, err := aimes.NewSimulatedEnvironment(aimes.EnvConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	matched, err := env.Bundle().Match(`arch == "cray" || nodes < 300`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range matched {
		fmt.Println(r.Name())
	}
	// Output:
	// blacklight
	// hopper
}
