module aimes

go 1.24
