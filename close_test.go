// Concurrent-shutdown battery: Environment.Close and Environment.Drain
// racing in-flight Submit and Wait. The contract under test: no call hangs,
// every rejected Submit and every failed Wait returns a descriptive error,
// and worker processes are reaped rather than leaked.
package aimes_test

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aimes"
)

// closeRaceScenario hammers one environment with concurrent submitters and
// waiters while Close fires mid-flight, then classifies every outcome.
func closeRaceScenario(t *testing.T, opts ...aimes.Option) {
	t.Helper()
	env, err := aimes.NewEnv(append([]aimes.Option{aimes.WithSeed(31337)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	cfg := aimes.StrategyConfig{Binding: aimes.LateBinding, Scheduler: aimes.SchedBackfill, Pilots: 2}
	const submitters, perSubmitter = 4, 6
	var (
		wg          sync.WaitGroup
		submitted   atomic.Int64
		rejected    atomic.Int64
		waitOK      atomic.Int64
		waitFailed  atomic.Int64
		closeSignal = make(chan struct{})
	)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				w, err := aimes.GenerateWorkload(
					aimes.BagOfTasks(16, aimes.UniformDuration()), int64(100*g+i))
				if err != nil {
					t.Error(err)
					return
				}
				j, err := env.Submit(context.Background(), w, aimes.JobConfig{StrategyConfig: cfg})
				if err != nil {
					// A post-Close submission must say why, not just "error".
					if !strings.Contains(err.Error(), "closed environment") {
						t.Errorf("submit rejection not descriptive: %v", err)
					}
					rejected.Add(1)
					continue
				}
				submitted.Add(1)
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				if _, err := j.Wait(ctx); err != nil {
					// In-flight jobs on a closed worker shard fail with the
					// shard named; a 60s timeout here means a hang.
					if ctx.Err() != nil {
						t.Errorf("Wait hung after Close (job %d)", j.ID())
					} else if !strings.Contains(err.Error(), "shard") {
						t.Errorf("post-Close failure not descriptive: %v", err)
					}
					waitFailed.Add(1)
				} else {
					waitOK.Add(1)
				}
				cancel()
				if i == 1 && g == 0 {
					close(closeSignal) // some jobs are provably in flight
				}
			}
		}(g)
	}

	<-closeSignal
	if err := env.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := env.Close(); err != nil {
		t.Errorf("second Close not a no-op: %v", err)
	}
	wg.Wait()

	// Deterministic coda (the racing rejections above are best-effort): a
	// Submit strictly after Close must always be rejected descriptively.
	w, err := aimes.GenerateWorkload(aimes.BagOfTasks(4, aimes.UniformDuration()), 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Submit(context.Background(), w, aimes.JobConfig{StrategyConfig: cfg}); err == nil {
		t.Error("Submit accepted on a closed environment")
	} else if !strings.Contains(err.Error(), "closed environment") {
		t.Errorf("post-Close rejection not descriptive: %v", err)
	}
	t.Logf("submitted %d (ok %d, failed %d), rejected %d",
		submitted.Load(), waitOK.Load(), waitFailed.Load(), rejected.Load())
}

// TestCloseVsSubmitWaitLocal races Close against Submit/Wait on in-process
// shards: Close is a backend no-op there, so jobs admitted before Close
// still complete, later submissions are rejected descriptively, and
// nothing hangs.
func TestCloseVsSubmitWaitLocal(t *testing.T) {
	closeRaceScenario(t, aimes.WithShards(2))
}

// TestCloseVsSubmitWaitWorker races Close against Submit/Wait on worker
// shards: in-flight jobs fail descriptively (their shard named) as the
// children exit, later submissions are rejected, nothing hangs — and the
// worker processes themselves are reaped, not leaked.
func TestCloseVsSubmitWaitWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	before := workerChildren(t)
	closeRaceScenario(t, aimes.WithWorkers(2))
	// Close must reap both children. The watcher kills on a short fuse
	// after an orderly close, so poll briefly.
	deadline := time.Now().Add(15 * time.Second)
	for {
		leaked := workerChildren(t)
		if leaked <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d worker process(es) still alive 15s after Close", leaked-before)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// workerChildren counts this process's direct children running the test
// binary — self-hosted workers are re-execs of os.Executable, so a nonzero
// delta across Close means leaked worker processes. Linux-only proc
// walking; skips elsewhere.
func workerChildren(t *testing.T) int {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Skipf("no executable path: %v", err)
	}
	procs, err := os.ReadDir("/proc")
	if err != nil {
		t.Skipf("no /proc: %v", err)
	}
	me := os.Getpid()
	count := 0
	for _, p := range procs {
		if _, err := strconv.Atoi(p.Name()); err != nil {
			continue
		}
		stat, err := os.ReadFile(filepath.Join("/proc", p.Name(), "stat"))
		if err != nil {
			continue
		}
		// stat: pid (comm) state ppid ... — comm may embed spaces, so parse
		// from after the last ')'.
		s := string(stat)
		i := strings.LastIndexByte(s, ')')
		if i < 0 {
			continue
		}
		fields := strings.Fields(s[i+1:])
		if len(fields) < 2 {
			continue
		}
		ppid, err := strconv.Atoi(fields[1])
		if err != nil || ppid != me {
			continue
		}
		exe, err := os.Readlink(filepath.Join("/proc", p.Name(), "exe"))
		if err != nil {
			continue
		}
		// " (deleted)" suffixes appear when the binary was rebuilt mid-run.
		if strings.TrimSuffix(exe, " (deleted)") == self {
			count++
		}
	}
	return count
}

// TestDrainVsSubmit exercises the graceful half: Drain stops admission with
// a descriptive error while racing submitters, pumps every already-admitted
// job to completion (reports intact), and returns only when no shard owns a
// live job.
func TestDrainVsSubmit(t *testing.T) {
	env, err := aimes.NewEnv(aimes.WithSeed(404), aimes.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	cfg := aimes.StrategyConfig{Binding: aimes.LateBinding, Scheduler: aimes.SchedBackfill, Pilots: 2}

	var jobs []*aimes.Job
	for i := 0; i < 6; i++ {
		w, err := aimes.GenerateWorkload(aimes.BagOfTasks(24, aimes.UniformDuration()), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		j, err := env.Submit(context.Background(), w, aimes.JobConfig{StrategyConfig: cfg})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	// Nobody calls Wait on these jobs: Drain itself must pump them.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := env.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !env.Draining() {
		t.Error("Draining() false after Drain")
	}
	for _, j := range jobs {
		if j.State() != aimes.JobDone {
			t.Errorf("job %d drained into state %v (%v)", j.ID(), j.State(), j.Err())
		}
		if r := j.Report(); r == nil || r.UnitsDone != 24 {
			t.Errorf("job %d: report %+v", j.ID(), r)
		}
	}

	w, err := aimes.GenerateWorkload(aimes.BagOfTasks(8, aimes.UniformDuration()), 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Submit(context.Background(), w, aimes.JobConfig{StrategyConfig: cfg}); err == nil {
		t.Fatal("Submit accepted on a draining environment")
	} else if !strings.Contains(err.Error(), "draining") {
		t.Fatalf("drain rejection not descriptive: %v", err)
	}
}
